// Package runner is the shared parallel experiment-execution
// subsystem. Every table, figure and ablation in this repository is a
// fan-out of independent, deterministic simulations; runner gives them
// one scheduler instead of a bespoke goroutine pool each:
//
//   - a bounded worker pool sized from runtime.GOMAXPROCS with
//     context-based cancellation (the first failing job stops the
//     sweep) and per-job panic recovery that surfaces the failing
//     job's configuration instead of crashing the whole run;
//   - deterministic sharding: results are returned in item order, and
//     Seed derives per-job RNG seeds from a stable hash of the job's
//     configuration, so a sweep's output is bit-identical regardless
//     of worker count or scheduling order;
//   - a content-addressed result cache (Cache) with singleflight
//     deduplication and an optional on-disk store, so identical runs —
//     like the ungated baseline shared by every gating table —
//     execute once per suite instead of once per caller;
//   - a progress/ETA hook for long sweeps.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"bce/internal/metrics"
)

// Progress is one progress report: Done jobs out of Total have
// finished (Cached of them served from a result cache), Elapsed
// wall-clock has passed, and ETA extrapolates the remaining time from
// the pace of the *uncached* jobs only — cache hits complete in
// microseconds and would otherwise skew the projected rate toward
// zero right when the remaining work is the expensive kind. ETA is
// zero until the first uncached job completes.
type Progress struct {
	Done, Total int
	// Cached counts completed jobs that reported themselves served
	// from a cache (see MarkCached).
	Cached  int
	Elapsed time.Duration
	ETA     time.Duration
}

// Options configures a Pool.
type Options struct {
	// Workers bounds concurrent jobs; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// Progress, when set, is called after each job completes. Calls are
	// serialized (never concurrent) but may come from any worker
	// goroutine.
	Progress func(Progress)
	// JobTimeout bounds each job attempt with context.WithTimeout; zero
	// means no per-job deadline. A timed-out attempt fails with a
	// context.DeadlineExceeded-wrapping error and counts as transient
	// (the deadline was per-attempt, not per-sweep), so Retries applies.
	JobTimeout time.Duration
	// Retries is how many times a failed job attempt is re-run before
	// its error is reported, but only for errors classified transient
	// (IsTransient): explicit Transient wrappers and per-job deadline
	// expiries. Deterministic failures and panics are never retried —
	// every simulation here is a pure function of its configuration, so
	// a real failure fails identically on every attempt.
	Retries int
	// RetryBackoff is the sleep before the first retry; each subsequent
	// retry doubles it. Zero means retries are immediate. The sleep
	// aborts early if the sweep is cancelled.
	RetryBackoff time.Duration
}

// Pool is a bounded parallel executor. Construct with New; a nil Pool
// is valid and behaves like New(Options{}).
type Pool struct {
	workers  int
	progress func(Progress)
	timeout  time.Duration
	retries  int
	backoff  time.Duration
}

// New returns a pool with the given options.
func New(opts Options) *Pool {
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		workers:  w,
		progress: opts.Progress,
		timeout:  opts.JobTimeout,
		retries:  opts.Retries,
		backoff:  opts.RetryBackoff,
	}
}

// Workers returns the configured worker bound.
func (p *Pool) Workers() int {
	if p == nil || p.workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.workers
}

func (p *Pool) progressFunc() func(Progress) {
	if p == nil {
		return nil
	}
	return p.progress
}

// PanicError is returned by Map/ForEach when a job panicked. It
// carries the job's configuration (its item formatted with %+v) so a
// crashing sweep reports which experiment died, not just where.
type PanicError struct {
	// Job is the panicking job's item, formatted with %+v.
	Job string
	// Index is the job's position in the item slice.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	stack := strings.TrimSpace(string(e.Stack))
	return fmt.Sprintf("runner: job %d (%s) panicked: %v\n%s", e.Index, e.Job, e.Value, stack)
}

// Unwrap exposes the recovered panic value when it is itself an error,
// so errors.As reaches structured aborts — like the pipeline
// watchdog's *WatchdogError — through the sweep's panic recovery.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// transientError marks an error as worth retrying.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// Transient wraps err so IsTransient reports true, telling the pool's
// bounded-retry machinery the failure is environmental (a flaky
// filesystem, an injected fault, resource exhaustion) rather than
// deterministic. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is retryable: wrapped with
// Transient, or a per-attempt deadline expiry (context.DeadlineExceeded
// from a JobTimeout). Sweep cancellation (context.Canceled) is never
// transient — it means stop, not try again.
func IsTransient(err error) bool {
	var t *transientError
	if errors.As(err, &t) {
		return true
	}
	return errors.Is(err, context.DeadlineExceeded)
}

// Map runs fn over every item on the pool and returns the results in
// item order (never completion order), which keeps downstream
// aggregation deterministic under any worker count. The first job
// error cancels the context passed to remaining jobs and unstarted
// jobs are skipped; the first error is returned. A panicking job is
// converted to a *PanicError naming the job's configuration.
func Map[T, R any](ctx context.Context, p *Pool, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out, ctx.Err()
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := p.Workers()
	if workers > len(items) {
		workers = len(items)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		done     int
		cached   int
	)
	start := time.Now()
	report := p.progressFunc()
	total := len(items)
	live.sweepStart(total, workers)
	if stop := startCapture(ctx, fmt.Sprintf("sweep(jobs=%d)", total)); stop != nil {
		defer stop()
	}
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					continue // drain remaining indices after cancellation
				}
				flag := newJobFlag()
				live.jobStart()
				r, err := attemptJob(p, context.WithValue(ctx, jobFlagKey{}, flag), i, items[i], fn)
				live.jobEnd(err, flag.cached())
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
						cancel()
					}
					mu.Unlock()
					continue
				}
				out[i] = r
				done++
				if flag.cached() {
					cached++
				}
				d, c := done, cached
				elapsed := time.Since(start)
				var eta time.Duration
				// Rate from uncached completions only: cache hits are
				// effectively free and must not dilute the projection.
				if u := d - c; u > 0 && d < total {
					eta = time.Duration(int64(elapsed) / int64(u) * int64(total-d))
				}
				if report != nil {
					report(Progress{Done: d, Total: total, Cached: c, Elapsed: elapsed, ETA: eta})
				}
				mu.Unlock()
			}
		}()
	}
feed:
	for i := range items {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, ctx.Err()
}

// attemptJob executes one job under the pool's hardening policy:
// each attempt runs with the per-job deadline (if any), and transient
// failures are retried up to the configured bound with doubling
// backoff. Panics are never retried — a panic is a bug or a structured
// abort (watchdog), and both reproduce deterministically.
func attemptJob[T, R any](p *Pool, ctx context.Context, i int, item T, fn func(ctx context.Context, i int, item T) (R, error)) (R, error) {
	var retries int
	var backoff time.Duration
	var timeout time.Duration
	if p != nil {
		retries, backoff, timeout = p.retries, p.backoff, p.timeout
	}
	var r R
	var err error
	for attempt := 0; ; attempt++ {
		r, err = runJob(ctx, i, item, timeout, fn)
		if err == nil || attempt >= retries || !IsTransient(err) || ctx.Err() != nil {
			return r, err
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			return r, err
		}
		live.jobRetry()
		if backoff > 0 {
			select {
			case <-time.After(Backoff{Initial: backoff}.Delay(attempt)):
			case <-ctx.Done():
				return r, err
			}
		}
	}
}

// runJob executes one job attempt with panic recovery and an optional
// per-attempt deadline.
func runJob[T, R any](ctx context.Context, i int, item T, timeout time.Duration, fn func(ctx context.Context, i int, item T) (R, error)) (r R, err error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{
				Job:   fmt.Sprintf("%+v", item),
				Index: i,
				Value: p,
				Stack: debug.Stack(),
			}
		}
	}()
	r, err = fn(ctx, i, item)
	// A job that ignored its context but raced the deadline reports
	// the deadline, not a half-made result's incidental error.
	if err != nil && ctx.Err() != nil && !errors.Is(err, ctx.Err()) {
		err = fmt.Errorf("%w (job error: %v)", ctx.Err(), err)
	}
	return r, err
}

// ForEach is Map for jobs with no result value.
func ForEach[T any](ctx context.Context, p *Pool, items []T, fn func(ctx context.Context, i int, item T) error) error {
	_, err := Map(ctx, p, items, func(ctx context.Context, i int, item T) (struct{}, error) {
		return struct{}{}, fn(ctx, i, item)
	})
	return err
}

// KeyOf canonicalizes the given configuration parts into a single
// stable key string. Parts are formatted with %v and joined with an
// unambiguous separator; use it to build cache keys and seed inputs
// from heterogeneous config values.
func KeyOf(parts ...any) string {
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%v", p)
	}
	return b.String()
}

// Seed derives a deterministic RNG seed from the job's configuration
// parts. Two jobs with the same configuration always draw the same
// seed; scheduling order and worker count never enter the derivation.
func Seed(parts ...any) int64 {
	return metrics.SeedFrom(KeyOf(parts...))
}
