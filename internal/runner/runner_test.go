package runner

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapPreservesItemOrder(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	p := New(Options{Workers: 8})
	out, err := Map(context.Background(), p, items, func(_ context.Context, i, item int) (int, error) {
		if i%3 == 0 {
			time.Sleep(time.Millisecond) // scramble completion order
		}
		return item * item, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), New(Options{}), nil, func(_ context.Context, i int, item string) (int, error) {
		t.Fatal("fn called for empty items")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestMapFirstErrorWinsAndCancels(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int32
	items := make([]int, 100)
	_, err := Map(context.Background(), New(Options{Workers: 2}), items, func(ctx context.Context, i, _ int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, boom
		}
		select {
		case <-ctx.Done():
		case <-time.After(2 * time.Millisecond):
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Cancellation must keep the sweep from running every job.
	if n := started.Load(); n == int32(len(items)) {
		t.Errorf("all %d jobs ran despite early failure", n)
	}
}

func TestMapPanicRecovery(t *testing.T) {
	type cfg struct{ Bench string }
	items := []cfg{{"gzip"}, {"mcf"}}
	_, err := Map(context.Background(), New(Options{Workers: 2}), items, func(_ context.Context, i int, c cfg) (int, error) {
		if c.Bench == "mcf" {
			panic("bad simulation state")
		}
		return 1, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T %v, want *PanicError", err, err)
	}
	if !strings.Contains(pe.Error(), "mcf") {
		t.Errorf("panic error does not name the failing job config: %v", pe)
	}
	if !strings.Contains(pe.Error(), "bad simulation state") {
		t.Errorf("panic error does not carry the panic value: %v", pe)
	}
}

func TestMapContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := Map(ctx, New(Options{Workers: 2}), []int{1, 2, 3}, func(ctx context.Context, i, item int) (int, error) {
		return item, nil
	})
	if err == nil {
		t.Fatalf("want context error, got out=%v", out)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	items := []int64{1, 2, 3, 4, 5}
	if err := ForEach(context.Background(), New(Options{Workers: 3}), items, func(_ context.Context, i int, item int64) error {
		sum.Add(item)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 15 {
		t.Errorf("sum = %d", sum.Load())
	}
}

func TestProgressReporting(t *testing.T) {
	var mu sync.Mutex
	var dones []int
	p := New(Options{Workers: 4, Progress: func(pr Progress) {
		mu.Lock()
		defer mu.Unlock()
		if pr.Total != 10 {
			t.Errorf("total = %d", pr.Total)
		}
		if pr.ETA < 0 || pr.Elapsed < 0 {
			t.Errorf("negative times: %+v", pr)
		}
		dones = append(dones, pr.Done)
	}})
	if err := ForEach(context.Background(), p, make([]int, 10), func(_ context.Context, i, _ int) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(dones) != 10 {
		t.Fatalf("%d progress reports, want 10", len(dones))
	}
	// Reports are serialized, so Done must be strictly increasing.
	for i := 1; i < len(dones); i++ {
		if dones[i] != dones[i-1]+1 {
			t.Fatalf("done sequence not monotone: %v", dones)
		}
	}
	if dones[len(dones)-1] != 10 {
		t.Errorf("final done = %d", dones[len(dones)-1])
	}
}

func TestNilPoolUsable(t *testing.T) {
	var p *Pool
	if p.Workers() < 1 {
		t.Fatal("nil pool has no workers")
	}
	out, err := Map(context.Background(), p, []int{1, 2}, func(_ context.Context, i, item int) (int, error) {
		return item + 1, nil
	})
	if err != nil || out[0] != 2 || out[1] != 3 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestSeedDeterministic(t *testing.T) {
	a := Seed("timing", "gzip", 40, "cic(0)", 2)
	b := Seed("timing", "gzip", 40, "cic(0)", 2)
	if a != b {
		t.Fatalf("same config, different seeds: %d vs %d", a, b)
	}
	if a < 0 {
		t.Errorf("seed negative: %d", a)
	}
	if c := Seed("timing", "gzip", 40, "cic(0)", 3); c == a {
		t.Errorf("segment change did not move the seed")
	}
	// The separator must keep adjacent parts unambiguous.
	if Seed("ab", "c") == Seed("a", "bc") {
		t.Errorf("key parts ambiguous under concatenation")
	}
}
