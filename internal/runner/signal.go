package runner

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
)

// ShutdownContext returns a context cancelled by the first SIGINT or
// SIGTERM, giving sweeps a graceful-shutdown window: in-flight jobs see
// the cancellation, checkpoint journals flush, and the caller can print
// a partial-results summary. A second signal exits immediately with
// the conventional 130 status — the escape hatch when shutdown itself
// wedges. The returned CancelFunc releases the signal handler; call it
// before process exit.
func ShutdownContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case sig := <-ch:
			// The bare newline breaks out of any in-place progress line
			// before the structured record.
			fmt.Fprintln(os.Stderr)
			slog.Warn("interrupted: finishing in-flight jobs, flushing checkpoints; interrupt again to kill",
				"signal", sig.String())
			cancel()
		case <-ctx.Done():
			signal.Stop(ch)
			return
		}
		select {
		case <-ch:
			os.Exit(130)
		case <-parent.Done():
		}
	}()
	return ctx, func() {
		signal.Stop(ch)
		cancel()
	}
}
