package runner

import (
	"context"
	"sync/atomic"
)

// jobFlagKey carries the per-job cache-classification flag through the
// context handed to job functions.
type jobFlagKey struct{}

// jobFlag classifies one job for progress/ETA accounting. States:
// 0 = untouched (counts as uncached), 1 = cached, 2 = computed
// (latched: any fresh computation makes the whole job uncached, even
// if other lookups inside it hit).
type jobFlag struct {
	state atomic.Int32
}

func newJobFlag() *jobFlag { return &jobFlag{} }

func (f *jobFlag) cached() bool { return f.state.Load() == 1 }

// MarkCached records that the current job's result came from a cache
// rather than a fresh computation, so progress ETAs exclude it from
// the pace estimate. Call it from inside a Map/ForEach job function
// with the context that function received. A later MarkComputed wins.
func MarkCached(ctx context.Context) {
	if f, ok := ctx.Value(jobFlagKey{}).(*jobFlag); ok {
		f.state.CompareAndSwap(0, 1)
	}
}

// MarkComputed records that the current job performed real work; it
// overrides any MarkCached calls from cache lookups the job also made.
func MarkComputed(ctx context.Context) {
	if f, ok := ctx.Value(jobFlagKey{}).(*jobFlag); ok {
		f.state.Store(2)
	}
}

// LiveStats is a snapshot of the process-wide execution counters the
// debug endpoint (-debug-addr) serves: cumulative job counts since
// process start, current worker occupancy, and the most recent sweep's
// progress.
type LiveStats struct {
	// JobsStarted/JobsDone/JobsFailed/JobsCached are cumulative across
	// every sweep the process has run.
	JobsStarted uint64 `json:"jobs_started"`
	JobsDone    uint64 `json:"jobs_done"`
	JobsFailed  uint64 `json:"jobs_failed"`
	JobsCached  uint64 `json:"jobs_cached"`
	// JobsRetried counts transient-failure retries; StoreQuarantined
	// counts cache entries moved aside as undecodable.
	JobsRetried      uint64 `json:"jobs_retried"`
	StoreQuarantined uint64 `json:"store_quarantined"`
	// BusyWorkers is the number of workers executing a job right now;
	// Workers is the most recent sweep's worker bound.
	BusyWorkers int64 `json:"busy_workers"`
	Workers     int64 `json:"workers"`
	// SweepDone/SweepTotal track the most recently started sweep
	// (concurrent sweeps overwrite each other; the totals above stay
	// exact regardless).
	SweepDone  int64 `json:"sweep_done"`
	SweepTotal int64 `json:"sweep_total"`
}

// live is the process-wide counter set behind LiveSnapshot. Updates
// are a handful of atomic ops per job — invisible next to a job that
// is an entire timing simulation.
var live liveCounters

type liveCounters struct {
	jobsStarted      atomic.Uint64
	jobsDone         atomic.Uint64
	jobsFailed       atomic.Uint64
	jobsCached       atomic.Uint64
	jobsRetried      atomic.Uint64
	storeQuarantined atomic.Uint64
	busyWorkers      atomic.Int64
	workers          atomic.Int64
	sweepDone        atomic.Int64
	sweepTotal       atomic.Int64
}

func (l *liveCounters) jobRetry() { l.jobsRetried.Add(1) }

func (l *liveCounters) quarantine() { l.storeQuarantined.Add(1) }

func (l *liveCounters) sweepStart(total, workers int) {
	l.sweepTotal.Store(int64(total))
	l.sweepDone.Store(0)
	l.workers.Store(int64(workers))
}

func (l *liveCounters) jobStart() {
	l.jobsStarted.Add(1)
	l.busyWorkers.Add(1)
}

func (l *liveCounters) jobEnd(err error, cached bool) {
	l.busyWorkers.Add(-1)
	l.sweepDone.Add(1)
	if err != nil {
		l.jobsFailed.Add(1)
		return
	}
	l.jobsDone.Add(1)
	if cached {
		l.jobsCached.Add(1)
	}
}

// LiveSnapshot returns the current execution counters. It is safe to
// call from any goroutine (the debug endpoint samples it per request).
func LiveSnapshot() LiveStats {
	return LiveStats{
		JobsStarted:      live.jobsStarted.Load(),
		JobsDone:         live.jobsDone.Load(),
		JobsFailed:       live.jobsFailed.Load(),
		JobsCached:       live.jobsCached.Load(),
		JobsRetried:      live.jobsRetried.Load(),
		StoreQuarantined: live.storeQuarantined.Load(),
		BusyWorkers:      live.busyWorkers.Load(),
		Workers:          live.workers.Load(),
		SweepDone:        live.sweepDone.Load(),
		SweepTotal:       live.sweepTotal.Load(),
	}
}
