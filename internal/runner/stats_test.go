package runner

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestProgressCached checks cache-classified jobs are excluded from
// the ETA pace: with every completed job cached, no rate exists and
// ETA stays zero; the Cached tally reaches the final report.
func TestProgressCached(t *testing.T) {
	var reports []Progress
	p := New(Options{Workers: 1, Progress: func(pr Progress) { reports = append(reports, pr) }})
	items := []int{0, 1, 2, 3}
	_, err := Map(context.Background(), p, items, func(ctx context.Context, i int, _ int) (int, error) {
		if i%2 == 0 {
			MarkCached(ctx)
		} else {
			MarkComputed(ctx)
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(items) {
		t.Fatalf("reports = %d, want %d", len(reports), len(items))
	}
	last := reports[len(reports)-1]
	if last.Done != 4 || last.Cached != 2 {
		t.Errorf("final report Done=%d Cached=%d, want 4/2", last.Done, last.Cached)
	}
}

// TestProgressAllCachedNoETA pins the fix for cache-skewed ETAs: when
// every completed job is a cache hit there is no uncached pace to
// extrapolate from, so ETA must stay zero rather than projecting a
// near-instant finish.
func TestProgressAllCachedNoETA(t *testing.T) {
	var etas []time.Duration
	p := New(Options{Workers: 2, Progress: func(pr Progress) { etas = append(etas, pr.ETA) }})
	_, err := Map(context.Background(), p, make([]int, 8), func(ctx context.Context, _ int, _ int) (int, error) {
		MarkCached(ctx)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, eta := range etas {
		if eta != 0 {
			t.Errorf("report %d: ETA = %v with only cached completions, want 0", i, eta)
		}
	}
}

// TestMarkComputedWins checks the latch: a job that both hit a cache
// and ran a fresh computation counts as computed.
func TestMarkComputedWins(t *testing.T) {
	var last Progress
	p := New(Options{Workers: 1, Progress: func(pr Progress) { last = pr }})
	_, err := Map(context.Background(), p, []int{0}, func(ctx context.Context, _ int, _ int) (int, error) {
		MarkCached(ctx)   // one lookup hit...
		MarkComputed(ctx) // ...but a fresh simulation also ran
		MarkCached(ctx)   // later hits must not demote it back
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Cached != 0 {
		t.Errorf("Cached = %d, want 0 (computed latch)", last.Cached)
	}
}

// TestMarkCachedOutsideJob checks the context API degrades to a no-op
// without a runner job (e.g. runTiming called directly in tests).
func TestMarkCachedOutsideJob(t *testing.T) {
	MarkCached(context.Background())
	MarkComputed(context.Background())
}

// TestLiveSnapshotScrapedMidSweep is the debug-endpoint race audit:
// scraper goroutines hammer LiveSnapshot (and JSON-encode it, exactly
// as the expvar endpoint does) while a sweep with retries and mixed
// cache classification runs. Under -race this proves the snapshot path
// is synchronization-clean; in any build it checks the invariants a
// torn snapshot would break.
func TestLiveSnapshotScrapedMidSweep(t *testing.T) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := LiveSnapshot()
				if _, err := json.Marshal(s); err != nil {
					t.Errorf("snapshot not JSON-encodable: %v", err)
					return
				}
				if s.BusyWorkers < 0 {
					t.Errorf("BusyWorkers = %d mid-sweep", s.BusyWorkers)
					return
				}
				if s.JobsDone+s.JobsFailed > s.JobsStarted {
					t.Errorf("finished %d+%d jobs but started only %d",
						s.JobsDone, s.JobsFailed, s.JobsStarted)
					return
				}
			}
		}()
	}

	p := New(Options{Workers: 4, Retries: 2, RetryBackoff: time.Microsecond})
	var once sync.Once
	_, err := Map(context.Background(), p, make([]int, 64), func(ctx context.Context, i int, _ int) (int, error) {
		switch i % 3 {
		case 0:
			MarkCached(ctx)
		case 1:
			MarkComputed(ctx)
		}
		var flaked bool
		once.Do(func() { flaked = true })
		if flaked {
			return 0, Transient(errors.New("scrape-audit flake"))
		}
		return i, nil
	})
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if busy := LiveSnapshot().BusyWorkers; busy != 0 {
		t.Errorf("BusyWorkers = %d after sweep, want 0", busy)
	}
}

// TestLiveSnapshot checks the process-wide counters advance across a
// sweep and workers return to idle.
func TestLiveSnapshot(t *testing.T) {
	before := LiveSnapshot()
	p := New(Options{Workers: 3})
	_, err := Map(context.Background(), p, make([]int, 5), func(ctx context.Context, i int, _ int) (int, error) {
		if i == 0 {
			MarkCached(ctx)
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after := LiveSnapshot()
	if got := after.JobsStarted - before.JobsStarted; got != 5 {
		t.Errorf("JobsStarted advanced by %d, want 5", got)
	}
	if got := after.JobsDone - before.JobsDone; got != 5 {
		t.Errorf("JobsDone advanced by %d, want 5", got)
	}
	if got := after.JobsCached - before.JobsCached; got != 1 {
		t.Errorf("JobsCached advanced by %d, want 1", got)
	}
	if after.BusyWorkers != 0 {
		t.Errorf("BusyWorkers = %d after sweep, want 0", after.BusyWorkers)
	}
	if after.SweepTotal != 5 || after.SweepDone != 5 {
		t.Errorf("sweep progress = %d/%d, want 5/5", after.SweepDone, after.SweepTotal)
	}
}
