package runner

import (
	"context"
	"testing"
	"time"
)

// TestProgressCached checks cache-classified jobs are excluded from
// the ETA pace: with every completed job cached, no rate exists and
// ETA stays zero; the Cached tally reaches the final report.
func TestProgressCached(t *testing.T) {
	var reports []Progress
	p := New(Options{Workers: 1, Progress: func(pr Progress) { reports = append(reports, pr) }})
	items := []int{0, 1, 2, 3}
	_, err := Map(context.Background(), p, items, func(ctx context.Context, i int, _ int) (int, error) {
		if i%2 == 0 {
			MarkCached(ctx)
		} else {
			MarkComputed(ctx)
		}
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(items) {
		t.Fatalf("reports = %d, want %d", len(reports), len(items))
	}
	last := reports[len(reports)-1]
	if last.Done != 4 || last.Cached != 2 {
		t.Errorf("final report Done=%d Cached=%d, want 4/2", last.Done, last.Cached)
	}
}

// TestProgressAllCachedNoETA pins the fix for cache-skewed ETAs: when
// every completed job is a cache hit there is no uncached pace to
// extrapolate from, so ETA must stay zero rather than projecting a
// near-instant finish.
func TestProgressAllCachedNoETA(t *testing.T) {
	var etas []time.Duration
	p := New(Options{Workers: 2, Progress: func(pr Progress) { etas = append(etas, pr.ETA) }})
	_, err := Map(context.Background(), p, make([]int, 8), func(ctx context.Context, _ int, _ int) (int, error) {
		MarkCached(ctx)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, eta := range etas {
		if eta != 0 {
			t.Errorf("report %d: ETA = %v with only cached completions, want 0", i, eta)
		}
	}
}

// TestMarkComputedWins checks the latch: a job that both hit a cache
// and ran a fresh computation counts as computed.
func TestMarkComputedWins(t *testing.T) {
	var last Progress
	p := New(Options{Workers: 1, Progress: func(pr Progress) { last = pr }})
	_, err := Map(context.Background(), p, []int{0}, func(ctx context.Context, _ int, _ int) (int, error) {
		MarkCached(ctx)   // one lookup hit...
		MarkComputed(ctx) // ...but a fresh simulation also ran
		MarkCached(ctx)   // later hits must not demote it back
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last.Cached != 0 {
		t.Errorf("Cached = %d, want 0 (computed latch)", last.Cached)
	}
}

// TestMarkCachedOutsideJob checks the context API degrades to a no-op
// without a runner job (e.g. runTiming called directly in tests).
func TestMarkCachedOutsideJob(t *testing.T) {
	MarkCached(context.Background())
	MarkComputed(context.Background())
}

// TestLiveSnapshot checks the process-wide counters advance across a
// sweep and workers return to idle.
func TestLiveSnapshot(t *testing.T) {
	before := LiveSnapshot()
	p := New(Options{Workers: 3})
	_, err := Map(context.Background(), p, make([]int, 5), func(ctx context.Context, i int, _ int) (int, error) {
		if i == 0 {
			MarkCached(ctx)
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	after := LiveSnapshot()
	if got := after.JobsStarted - before.JobsStarted; got != 5 {
		t.Errorf("JobsStarted advanced by %d, want 5", got)
	}
	if got := after.JobsDone - before.JobsDone; got != 5 {
		t.Errorf("JobsDone advanced by %d, want 5", got)
	}
	if got := after.JobsCached - before.JobsCached; got != 1 {
		t.Errorf("JobsCached advanced by %d, want 1", got)
	}
	if after.BusyWorkers != 0 {
		t.Errorf("BusyWorkers = %d after sweep, want 0", after.BusyWorkers)
	}
	if after.SweepTotal != 5 || after.SweepDone != 5 {
		t.Errorf("sweep progress = %d/%d, want 5/5", after.SweepDone, after.SweepTotal)
	}
}
