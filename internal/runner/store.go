package runner

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Store persists cache entries across process invocations. Load
// returns the stored bytes for a key (false when absent or unreadable)
// and Save writes them; both are best-effort — a broken store must
// degrade to cache misses, never to errors.
type Store interface {
	Load(key string) ([]byte, bool)
	Save(key string, data []byte)
}

// DirStore files each entry as <fnv64-of-key>.json in a directory. The
// full key is stored inside the envelope and verified on load, so a
// 64-bit filename collision reads as a miss instead of returning the
// wrong experiment's results.
type DirStore struct {
	dir string
}

// storeEnvelope is the on-disk record: the exact key plus the payload.
type storeEnvelope struct {
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// NewDirStore returns a store rooted at dir, creating it if needed.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) path(key string) string {
	return filepath.Join(s.dir, fmt.Sprintf("%016x.json", Fingerprint(key)))
}

// Load implements Store.
func (s *DirStore) Load(key string) ([]byte, bool) {
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	var env storeEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Key != key {
		return nil, false
	}
	return env.Data, true
}

// Save implements Store. The write goes through a temp file + rename
// so concurrent invocations never observe a torn entry.
func (s *DirStore) Save(key string, data []byte) {
	env := storeEnvelope{Key: key, Data: json.RawMessage(data)}
	raw, err := json.Marshal(env)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, s.path(key)); err != nil {
		os.Remove(name)
	}
}

var _ Store = (*DirStore)(nil)
