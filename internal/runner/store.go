package runner

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
)

// Store persists cache entries across process invocations. Load
// returns the stored bytes for a key (false when absent or unreadable)
// and Save writes them; both are best-effort — a broken store must
// degrade to cache misses, never to errors.
type Store interface {
	Load(key string) ([]byte, bool)
	Save(key string, data []byte)
}

// DirStore files each entry as <fnv64-of-key>.json in a directory. The
// full key is stored inside the envelope and verified on load, so a
// 64-bit filename collision reads as a miss instead of returning the
// wrong experiment's results.
type DirStore struct {
	dir string
}

// storeEnvelope is the on-disk record: the exact key plus the payload.
type storeEnvelope struct {
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// NewDirStore returns a store rooted at dir, creating it if needed.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	return &DirStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *DirStore) Dir() string { return s.dir }

func (s *DirStore) path(key string) string {
	return filepath.Join(s.dir, fmt.Sprintf("%016x.json", Fingerprint(key)))
}

// Load implements Store. An entry that fails to decode is quarantined:
// renamed to <name>.bad so it stops shadowing the slot, counted in
// LiveStats.StoreQuarantined, and reported on stderr. A decodable
// entry whose embedded key differs is NOT quarantined — that is a
// 64-bit filename collision with another experiment's valid entry, and
// it reads as a plain miss.
func (s *DirStore) Load(key string) ([]byte, bool) {
	path := s.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var env storeEnvelope
	if err := json.Unmarshal(raw, &env); err != nil {
		s.quarantine(path, err)
		return nil, false
	}
	if env.Key != key {
		return nil, false
	}
	return env.Data, true
}

// quarantine moves an undecodable entry aside as <name>.bad. The cache
// slot becomes a plain miss, so the experiment recomputes and
// repopulates it; the corrupt bytes stay on disk for diagnosis.
func (s *DirStore) quarantine(path string, reason error) {
	bad := path + ".bad"
	if err := os.Rename(path, bad); err != nil {
		// Couldn't move it aside (e.g. permissions); remove instead so
		// the corrupt entry can't shadow the slot forever.
		bad = "(removed)"
		if os.Remove(path) != nil {
			return
		}
	}
	live.quarantine()
	slog.Warn("quarantined corrupt cache entry",
		"entry", filepath.Base(path), "moved_to", filepath.Base(bad), "err", reason)
}

// Save implements Store. The write goes through a temp file + rename
// so concurrent invocations never observe a torn entry.
func (s *DirStore) Save(key string, data []byte) {
	env := storeEnvelope{Key: key, Data: json.RawMessage(data)}
	raw, err := json.Marshal(env)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, s.path(key)); err != nil {
		os.Remove(name)
	}
}

var _ Store = (*DirStore)(nil)

// tieredStore chains stores: loads hit the first tier that answers,
// saves write through to every tier.
type tieredStore []Store

// Load implements Store.
func (t tieredStore) Load(key string) ([]byte, bool) {
	for _, s := range t {
		if data, ok := s.Load(key); ok {
			return data, true
		}
	}
	return nil, false
}

// Save implements Store.
func (t tieredStore) Save(key string, data []byte) {
	for _, s := range t {
		s.Save(key, data)
	}
}

// Tiered combines stores into one: Load consults them in order and
// returns the first hit; Save writes through to all. Nil stores are
// dropped; nil is returned when nothing remains. Use it to stack a
// crash-safe checkpoint journal in front of the shared DirStore.
func Tiered(stores ...Store) Store {
	var kept tieredStore
	for _, s := range stores {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	default:
		return kept
	}
}
