// Package stats provides the small statistical toolkit the experiment
// reports use: summary statistics and deterministic bootstrap
// confidence intervals over per-benchmark results, so tables can
// report variability alongside means.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes descriptive statistics. An empty sample returns
// the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(s.Std / float64(len(xs)-1))
	} else {
		s.Std = 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// String renders "mean ± std [min, max]".
func (s Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f [%.2f, %.2f]", s.Mean, s.Std, s.Min, s.Max)
}

// Interval is a two-sided confidence interval.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// String renders "[lo, hi]".
func (iv Interval) String() string { return fmt.Sprintf("[%.2f, %.2f]", iv.Lo, iv.Hi) }

// BootstrapMeanCI returns a percentile bootstrap confidence interval
// for the mean at the given level (e.g. 0.95), using `rounds`
// resamples from a deterministic seed. Level must be in (0, 1);
// rounds >= 1. An empty sample returns the zero interval.
func BootstrapMeanCI(xs []float64, level float64, rounds int, seed int64) Interval {
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("stats: bootstrap level %v outside (0,1)", level))
	}
	if rounds < 1 {
		panic(fmt.Sprintf("stats: bootstrap rounds %d < 1", rounds))
	}
	if len(xs) == 0 {
		return Interval{}
	}
	rng := rand.New(rand.NewSource(seed))
	means := make([]float64, rounds)
	for r := range means {
		var sum float64
		for i := 0; i < len(xs); i++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means[r] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	lo := int(alpha * float64(rounds))
	hi := int((1 - alpha) * float64(rounds))
	if hi >= rounds {
		hi = rounds - 1
	}
	return Interval{Lo: means[lo], Hi: means[hi]}
}

// GeoMean returns the geometric mean of positive values; zero or
// negative entries are an error in the caller's pipeline, reported by
// returning NaN so it cannot be mistaken for a real speedup.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
