package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || !almost(s.Mean, 3) || !almost(s.Median, 3) {
		t.Fatalf("summary = %+v", s)
	}
	if !almost(s.Min, 1) || !almost(s.Max, 5) {
		t.Fatalf("range = [%v, %v]", s.Min, s.Max)
	}
	if !almost(s.Std, math.Sqrt(2.5)) {
		t.Fatalf("std = %v", s.Std)
	}
	if s.String() == "" {
		t.Error("render")
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if !almost(s.Median, 2.5) {
		t.Fatalf("median = %v", s.Median)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Error("empty")
	}
	s := Summarize([]float64{7})
	if s.N != 1 || !almost(s.Mean, 7) || !almost(s.Std, 0) || !almost(s.Median, 7) {
		t.Fatalf("singleton = %+v", s)
	}
}

// Property: mean lies within [min, max]; std >= 0; median within range.
func TestSummarizeQuick(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6 &&
			s.Std >= 0 && s.Median >= s.Min && s.Median <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	xs := []float64{10, 11, 9, 10.5, 9.5, 10, 10.2, 9.8}
	iv := BootstrapMeanCI(xs, 0.95, 2000, 1)
	if !iv.Contains(10) {
		t.Errorf("CI %v does not contain the true mean", iv)
	}
	if iv.Lo > iv.Hi {
		t.Errorf("inverted interval %v", iv)
	}
	if iv.Hi-iv.Lo > 2 {
		t.Errorf("CI %v implausibly wide", iv)
	}
	if iv.String() == "" {
		t.Error("render")
	}
	// Deterministic for a fixed seed.
	iv2 := BootstrapMeanCI(xs, 0.95, 2000, 1)
	if iv != iv2 {
		t.Error("bootstrap not deterministic")
	}
}

func TestBootstrapEmptyAndPanics(t *testing.T) {
	if iv := BootstrapMeanCI(nil, 0.95, 100, 1); iv != (Interval{}) {
		t.Error("empty sample")
	}
	for _, tc := range []struct {
		level  float64
		rounds int
	}{{0, 100}, {1, 100}, {0.95, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for level=%v rounds=%d", tc.level, tc.rounds)
				}
			}()
			BootstrapMeanCI([]float64{1}, tc.level, tc.rounds, 1)
		}()
	}
}

func TestGeoMean(t *testing.T) {
	if !almost(GeoMean([]float64{1, 4}), 2) {
		t.Error("geomean(1,4)")
	}
	if !almost(GeoMean([]float64{3, 3, 3}), 3) {
		t.Error("geomean const")
	}
	if !math.IsNaN(GeoMean(nil)) || !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("invalid inputs must yield NaN")
	}
}

// TestBootstrapGoldenValues pins the exact intervals the bootstrap
// produces for fixed inputs. The fidelity scorecard commits CIs
// computed with (level 0.95, rounds 1000, seed 1) to a byte-stable
// baseline, so any change to the resampling sequence — a different
// RNG, a different resample loop order — must show up here first, not
// as unexplained drift in CI.
func TestBootstrapGoldenValues(t *testing.T) {
	cases := []struct {
		xs     []float64
		level  float64
		rounds int
		seed   int64
		want   Interval
	}{
		// The paper's Table 2 misp/Kuop column under the scorecard's
		// bootstrap parameters.
		{[]float64{5.2, 6.6, 2.3, 16, 3.4, 4.6, 0.5, 0.7, 1.7, 0.2, 1.1, 6.3},
			0.95, 1000, 1, Interval{Lo: 1.96666666666667, Hi: 6.725}},
		{[]float64{1, 2, 3, 4, 5}, 0.9, 200, 42, Interval{Lo: 2, Hi: 4}},
	}
	for i, tc := range cases {
		got := BootstrapMeanCI(tc.xs, tc.level, tc.rounds, tc.seed)
		if math.Abs(got.Lo-tc.want.Lo) > 1e-9 || math.Abs(got.Hi-tc.want.Hi) > 1e-9 {
			t.Errorf("case %d: CI = [%.15g, %.15g], want [%.15g, %.15g]",
				i, got.Lo, got.Hi, tc.want.Lo, tc.want.Hi)
		}
	}
}
