package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// bandCount is the number of confidence bands (high, weak-low,
// strong-low); mirrors internal/confidence without importing it, so
// telemetry stays a leaf package.
const bandCount = 3

// pcAudit accumulates one static branch's confidence history.
type pcAudit struct {
	estimates [bandCount]uint64 // fetch-time estimates per band (incl. wrong path)
	ok        [bandCount]uint64 // retired, prediction correct, per band
	miss      [bandCount]uint64 // retired, prediction wrong, per band
	gated     uint64            // times this branch armed the gating counter
	reversals uint64
	corrected uint64 // reversals that fixed a would-be misprediction
}

// Audit is a Sink that builds the per-branch-PC confidence audit: for
// every static conditional branch, how often each band was assigned,
// the per-band hit/miss record at retirement, and the gating and
// reversal decisions taken on it. This is the H2P-style breakdown that
// whole-run means hide — the handful of PCs where a band is chronically
// wrong is exactly where an estimator loses its coverage.
type Audit struct {
	pcs map[uint64]*pcAudit
}

// NewAudit returns an empty audit collector.
func NewAudit() *Audit { return &Audit{pcs: make(map[uint64]*pcAudit)} }

func (a *Audit) at(pc uint64) *pcAudit {
	p := a.pcs[pc]
	if p == nil {
		p = &pcAudit{}
		a.pcs[pc] = p
	}
	return p
}

// Emit implements Sink.
func (a *Audit) Emit(e Event) {
	switch e.Kind {
	case EvEstimate:
		if e.Band < bandCount {
			a.at(e.PC).estimates[e.Band]++
		}
	case EvTrain:
		if e.Band < bandCount {
			p := a.at(e.PC)
			if e.Mispred {
				p.miss[e.Band]++
			} else {
				p.ok[e.Band]++
			}
		}
	case EvGateArm:
		a.at(e.PC).gated++
	case EvReversal:
		p := a.at(e.PC)
		p.reversals++
		if e.Mispred {
			p.corrected++
		}
	}
}

// Branches returns the number of distinct branch PCs audited.
func (a *Audit) Branches() int { return len(a.pcs) }

// auditHeader is the CSV column set. "est_*" columns are fetch-time
// band assignments (wrong-path fetches included, since those are the
// estimates gating acts on); "*_ok"/"*_miss" count retired branches
// per band by prediction outcome.
const auditHeader = "pc,estimates,est_high,est_weak_low,est_strong_low," +
	"trained,high_ok,high_miss,weak_low_ok,weak_low_miss,strong_low_ok,strong_low_miss," +
	"mispredict_rate,gated,reversals,reversals_good\n"

// WriteCSV renders the audit sorted by PC.
func (a *Audit) WriteCSV(w io.Writer) error {
	pcs := make([]uint64, 0, len(a.pcs))
	for pc := range a.pcs {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	if _, err := io.WriteString(w, auditHeader); err != nil {
		return err
	}
	for _, pc := range pcs {
		p := a.pcs[pc]
		est := p.estimates[0] + p.estimates[1] + p.estimates[2]
		trained := p.ok[0] + p.ok[1] + p.ok[2] + p.miss[0] + p.miss[1] + p.miss[2]
		miss := p.miss[0] + p.miss[1] + p.miss[2]
		rate := 0.0
		if trained > 0 {
			rate = float64(miss) / float64(trained)
		}
		if _, err := fmt.Fprintf(w, "0x%x,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%d,%d,%d\n",
			pc, est, p.estimates[0], p.estimates[1], p.estimates[2],
			trained, p.ok[0], p.miss[0], p.ok[1], p.miss[1], p.ok[2], p.miss[2],
			rate, p.gated, p.reversals, p.corrected); err != nil {
			return err
		}
	}
	return nil
}

var _ Sink = (*Audit)(nil)
