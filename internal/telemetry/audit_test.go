package telemetry

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestAuditCSV(t *testing.T) {
	a := NewAudit()
	// PC 0x100: two high estimates, one trained correct, one trained
	// wrong; gated once.
	a.Emit(Event{Kind: EvEstimate, PC: 0x100, Band: 0})
	a.Emit(Event{Kind: EvEstimate, PC: 0x100, Band: 0})
	a.Emit(Event{Kind: EvTrain, PC: 0x100, Band: 0})
	a.Emit(Event{Kind: EvTrain, PC: 0x100, Band: 0, Mispred: true})
	a.Emit(Event{Kind: EvGateArm, PC: 0x100})
	// PC 0x80 (sorts first): strong-low estimate, corrected reversal.
	a.Emit(Event{Kind: EvEstimate, PC: 0x80, Band: 2})
	a.Emit(Event{Kind: EvTrain, PC: 0x80, Band: 2, Mispred: true})
	a.Emit(Event{Kind: EvReversal, PC: 0x80, Mispred: true})

	if a.Branches() != 2 {
		t.Fatalf("Branches() = %d, want 2", a.Branches())
	}

	var buf bytes.Buffer
	if err := a.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(rows))
	}
	header := strings.Join(rows[0], ",")
	if header+"\n" != auditHeader {
		t.Errorf("header = %q", header)
	}
	col := func(row []string, name string) string {
		for i, h := range rows[0] {
			if h == name {
				return row[i]
			}
		}
		t.Fatalf("no column %q", name)
		return ""
	}

	// Sorted by PC: 0x80 first.
	if got := col(rows[1], "pc"); got != "0x80" {
		t.Errorf("row 1 pc = %q, want 0x80 (sorted)", got)
	}
	if got := col(rows[1], "est_strong_low"); got != "1" {
		t.Errorf("0x80 est_strong_low = %q", got)
	}
	if got := col(rows[1], "reversals_good"); got != "1" {
		t.Errorf("0x80 reversals_good = %q", got)
	}
	if got := col(rows[1], "mispredict_rate"); got != "1.0000" {
		t.Errorf("0x80 mispredict_rate = %q", got)
	}

	if got := col(rows[2], "pc"); got != "0x100" {
		t.Errorf("row 2 pc = %q", got)
	}
	if got := col(rows[2], "estimates"); got != "2" {
		t.Errorf("0x100 estimates = %q", got)
	}
	if got := col(rows[2], "high_ok"); got != "1" {
		t.Errorf("0x100 high_ok = %q", got)
	}
	if got := col(rows[2], "high_miss"); got != "1" {
		t.Errorf("0x100 high_miss = %q", got)
	}
	if got := col(rows[2], "mispredict_rate"); got != "0.5000" {
		t.Errorf("0x100 mispredict_rate = %q", got)
	}
	if got := col(rows[2], "gated"); got != "1" {
		t.Errorf("0x100 gated = %q", got)
	}
}

func TestAuditIgnoresUnrelatedEvents(t *testing.T) {
	a := NewAudit()
	a.Emit(Event{Kind: EvFetch, PC: 0x10})
	a.Emit(Event{Kind: EvRetire, PC: 0x10})
	a.Emit(Event{Kind: EvGateOn, N: 3})
	if a.Branches() != 0 {
		t.Errorf("pipeline events created audit rows: %d", a.Branches())
	}
}
