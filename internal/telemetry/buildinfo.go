package telemetry

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// buildinfo.go emits the conventional <app>_build_info identity gauge:
// a constant-1 sample whose labels identify the running binary — Go
// version always, plus whatever the binary registers at startup (git
// revision, wire/manifest/trace schema versions). Scraping it from
// every process in a fleet is how version skew is spotted from the
// metrics plane alone.

var (
	buildLabelMu sync.Mutex
	buildLabels  = map[string]string{}
)

// RegisterBuildLabel adds (or overwrites) one label on the process's
// bce_build_info gauge. Call from main before serving; label names are
// sanitized into the metric-name alphabet, values may be arbitrary
// strings (escaped on output).
func RegisterBuildLabel(name, value string) {
	n := strings.TrimSuffix(strings.ReplaceAll(sanitizeMetricName(name), ":", "_"), "_")
	if n == "" {
		return
	}
	buildLabelMu.Lock()
	buildLabels[n] = value
	buildLabelMu.Unlock()
}

// BuildInfoLine returns the bce_build_info sample line alone —
// sorted, escaped labels, no HELP/TYPE — which doubles as the
// process's one-line identity string for the -version flag every
// binary carries (register labels first, then print this and exit 0).
func BuildInfoLine() string {
	buildLabelMu.Lock()
	labels := make(map[string]string, len(buildLabels)+1)
	for k, v := range buildLabels {
		labels[k] = v
	}
	buildLabelMu.Unlock()
	if _, ok := labels["go_version"]; !ok {
		labels["go_version"] = runtime.Version()
	}
	names := make([]string, 0, len(labels))
	for k := range labels {
		names = append(names, k)
	}
	sort.Strings(names)
	var pairs []string
	for _, k := range names {
		pairs = append(pairs, fmt.Sprintf(`%s="%s"`, k, escapeLabelValue(labels[k])))
	}
	return fmt.Sprintf("bce_build_info{%s} 1", strings.Join(pairs, ","))
}

// WriteBuildInfo writes the bce_build_info gauge in Prometheus text
// form: HELP, TYPE, then one sample with sorted, escaped labels.
func WriteBuildInfo(w io.Writer) {
	fmt.Fprint(w, "# HELP bce_build_info Build identity of this process; value is always 1.\n")
	fmt.Fprint(w, "# TYPE bce_build_info gauge\n")
	fmt.Fprint(w, BuildInfoLine()+"\n")
}
