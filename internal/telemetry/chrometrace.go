package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event thread ids: one lane per pipeline stage plus
// control lanes, so a uop's life shows as stacked slices across lanes
// and gating stalls as slices on their own lane.
const (
	tidFrontend = 1 // fetch → dispatch
	tidWindow   = 2 // dispatch → issue (scheduling window residency)
	tidExecute  = 3 // issue → complete
	tidCommit   = 4 // complete → retire
	tidGating   = 5 // fetch-gated intervals
	tidControl  = 6 // squashes, reversals, low-confidence marks
)

var tidNames = map[int]string{
	tidFrontend: "frontend",
	tidWindow:   "window",
	tidExecute:  "execute",
	tidCommit:   "commit",
	tidGating:   "gating",
	tidControl:  "control",
}

// chromeSpan tracks one in-flight uop's stage boundaries.
type chromeSpan struct {
	pc        uint64
	fetch     uint64
	dispatch  uint64
	issue     uint64
	complete  uint64
	wrongPath bool
	isBranch  bool
}

// chromeEvent is one buffered trace_event entry; Fields is marshaled
// verbatim (encoding/json sorts map keys, keeping output canonical).
// pid separates processes in a merged multi-process timeline; the
// single-process simulator trace leaves it 0.
type chromeEvent struct {
	ts     uint64
	pid    int
	tid    int
	fields map[string]any
}

// writeTraceDoc sorts events by (ts, pid, tid) stably and writes the
// trace_event JSON document: one event object per line, so goldens
// diff cleanly. Shared by the simulator ChromeTrace sink and the
// distributed span exporter (spantrace.go).
func writeTraceDoc(w io.Writer, events []chromeEvent) error {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].ts != events[j].ts {
			return events[i].ts < events[j].ts
		}
		if events[i].pid != events[j].pid {
			return events[i].pid < events[j].pid
		}
		return events[i].tid < events[j].tid
	})
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i, e := range events {
		b, err := json.Marshal(e.fields)
		if err != nil {
			return err
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := fmt.Fprintf(w, "%s%s", b, sep); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]}\n")
	return err
}

// ChromeTrace is a Sink that renders the event stream as Chrome
// trace_event JSON loadable in chrome://tracing or Perfetto. One
// simulated cycle maps to one microsecond of trace time. Events are
// buffered in memory and written, sorted by timestamp, on Close — so
// trace a bounded run, not an open-ended sweep.
type ChromeTrace struct {
	w      io.Writer
	events []chromeEvent
	open   map[uint64]*chromeSpan

	gateStart uint64
	gateOn    bool
	closed    bool
}

// NewChromeTrace returns a trace writer targeting w. Call Close to
// flush the JSON.
func NewChromeTrace(w io.Writer) *ChromeTrace {
	c := &ChromeTrace{w: w, open: make(map[uint64]*chromeSpan)}
	// Thread-name metadata events label the lanes in the viewer.
	for tid := tidFrontend; tid <= tidControl; tid++ {
		c.events = append(c.events, chromeEvent{ts: 0, tid: tid, fields: map[string]any{
			"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
			"args": map[string]any{"name": tidNames[tid]},
		}})
	}
	return c
}

func (c *ChromeTrace) slice(name string, tid int, start, end uint64, args map[string]any) {
	f := map[string]any{
		"name": name, "ph": "X", "ts": start, "dur": end - start,
		"pid": 0, "tid": tid,
	}
	if args != nil {
		f["args"] = args
	}
	c.events = append(c.events, chromeEvent{ts: start, tid: tid, fields: f})
}

func (c *ChromeTrace) instant(name string, tid int, ts uint64, args map[string]any) {
	f := map[string]any{
		"name": name, "ph": "i", "ts": ts, "s": "t",
		"pid": 0, "tid": tid,
	}
	if args != nil {
		f["args"] = args
	}
	c.events = append(c.events, chromeEvent{ts: ts, tid: tid, fields: f})
}

func (c *ChromeTrace) counter(name string, ts uint64, value uint64) {
	c.events = append(c.events, chromeEvent{ts: ts, tid: 0, fields: map[string]any{
		"name": name, "ph": "C", "ts": ts, "pid": 0, "tid": 0,
		"args": map[string]any{"value": value},
	}})
}

func (c *ChromeTrace) spanArgs(seq uint64, sp *chromeSpan) map[string]any {
	args := map[string]any{"seq": seq, "pc": fmt.Sprintf("0x%x", sp.pc)}
	if sp.wrongPath {
		args["wrong_path"] = true
	}
	if sp.isBranch {
		args["branch"] = true
	}
	return args
}

// Emit implements Sink.
func (c *ChromeTrace) Emit(e Event) {
	switch e.Kind {
	case EvFetch:
		c.open[e.Seq] = &chromeSpan{pc: e.PC, fetch: e.Cycle, wrongPath: e.WrongPath}
	case EvPredict:
		if sp := c.open[e.Seq]; sp != nil {
			sp.isBranch = true
		}
	case EvDispatch:
		if sp := c.open[e.Seq]; sp != nil {
			sp.dispatch = e.Cycle
			c.slice("fetch", tidFrontend, sp.fetch, e.Cycle, c.spanArgs(e.Seq, sp))
		}
	case EvIssue:
		if sp := c.open[e.Seq]; sp != nil {
			sp.issue = e.Cycle
			c.slice("wait", tidWindow, sp.dispatch, e.Cycle, c.spanArgs(e.Seq, sp))
		}
	case EvComplete:
		if sp := c.open[e.Seq]; sp != nil {
			sp.complete = e.Cycle
			c.slice("execute", tidExecute, sp.issue, e.Cycle, c.spanArgs(e.Seq, sp))
		}
	case EvRetire:
		if sp := c.open[e.Seq]; sp != nil {
			c.slice("commit", tidCommit, sp.complete, e.Cycle, c.spanArgs(e.Seq, sp))
			delete(c.open, e.Seq)
		}
	case EvSquashUop:
		delete(c.open, e.Seq)
	case EvSquash:
		c.instant("squash", tidControl, e.Cycle, map[string]any{"uops": e.N, "diverge_seq": e.Seq})
	case EvReversal:
		args := map[string]any{"pc": fmt.Sprintf("0x%x", e.PC)}
		if e.Mispred {
			args["corrected"] = true
		}
		c.instant("reversal", tidControl, e.Cycle, args)
	case EvEstimate:
		// High-confidence estimates are the common case and would bury
		// the timeline; mark only the low-confidence ones.
		if e.Band != 0 {
			c.instant("low-confidence", tidControl, e.Cycle, map[string]any{
				"pc": fmt.Sprintf("0x%x", e.PC), "band": int(e.Band), "output": e.Output,
			})
		}
	case EvGateOn:
		c.gateStart, c.gateOn = e.Cycle, true
		c.counter("gated-branches", e.Cycle, e.N)
	case EvGateOff:
		if c.gateOn {
			c.slice("gated", tidGating, c.gateStart, e.Cycle, map[string]any{"cycles": e.Cycle - c.gateStart})
			c.gateOn = false
		}
		c.counter("gated-branches", e.Cycle, 0)
	}
}

// Close sorts the buffered events by timestamp (then lane) and writes
// the trace_event JSON document. The sort guarantees monotonic
// timestamps per thread id, which keeps every viewer happy and the
// golden tests honest.
func (c *ChromeTrace) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	// An unterminated gating interval at end of trace still deserves a
	// slice.
	if c.gateOn {
		last := c.gateStart
		for _, e := range c.events {
			if e.ts > last {
				last = e.ts
			}
		}
		c.slice("gated", tidGating, c.gateStart, last, nil)
	}
	return writeTraceDoc(c.w, c.events)
}

var _ Sink = (*ChromeTrace)(nil)
