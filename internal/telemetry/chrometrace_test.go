package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// emitFixedSequence drives a sink through a small, fully determined
// simulation fragment: two uops (one retiring, one squashed), a
// low-confidence estimate, a gating episode and a reversal.
func emitFixedSequence(s Sink) {
	emit := func(e Event) { s.Emit(e) }
	// Uop 1: a branch that fetches, flows through every stage, retires.
	emit(Event{Kind: EvFetch, Cycle: 0, Seq: 1, PC: 0x400010})
	emit(Event{Kind: EvPredict, Cycle: 0, Seq: 1, PC: 0x400010, Taken: true})
	emit(Event{Kind: EvEstimate, Cycle: 0, Seq: 1, PC: 0x400010, Band: 1, Output: -12, Taken: true})
	emit(Event{Kind: EvDispatch, Cycle: 2, Seq: 1, PC: 0x400010})
	emit(Event{Kind: EvIssue, Cycle: 4, Seq: 1, PC: 0x400010})
	emit(Event{Kind: EvComplete, Cycle: 7, Seq: 1, PC: 0x400010})
	// Uop 2: wrong path, squashed before completing.
	emit(Event{Kind: EvFetch, Cycle: 1, Seq: 2, PC: 0x400020, WrongPath: true})
	emit(Event{Kind: EvDispatch, Cycle: 3, Seq: 2, PC: 0x400020})
	emit(Event{Kind: EvSquashUop, Cycle: 8, Seq: 2})
	emit(Event{Kind: EvSquash, Cycle: 8, Seq: 1, N: 1})
	// A gating episode and its release.
	emit(Event{Kind: EvGateOn, Cycle: 9, N: 2})
	emit(Event{Kind: EvGateOff, Cycle: 14, N: 5})
	// Reversal that corrected a misprediction, then uop 1 retires.
	emit(Event{Kind: EvReversal, Cycle: 15, PC: 0x400010, Taken: false, Mispred: true})
	emit(Event{Kind: EvRetire, Cycle: 16, Seq: 1, PC: 0x400010})
	emit(Event{Kind: EvTrain, Cycle: 16, PC: 0x400010, Band: 1, Taken: true})
}

func buildTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	ct := NewChromeTrace(&buf)
	emitFixedSequence(ct)
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ct.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	return buf.Bytes()
}

// TestChromeTraceGolden pins the exact emitted JSON for a fixed event
// sequence. Regenerate with: go test ./internal/telemetry -run Golden -update
func TestChromeTraceGolden(t *testing.T) {
	got := buildTrace(t)
	golden := filepath.Join("testdata", "chrome_trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace output differs from golden file %s\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// traceDoc mirrors the trace_event JSON envelope.
type traceDoc struct {
	DisplayTimeUnit string             `json:"displayTimeUnit"`
	TraceEvents     []traceEventRecord `json:"traceEvents"`
}

type traceEventRecord struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   *uint64        `json:"ts"`
	Dur  *uint64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// TestChromeTraceStructure validates the trace_event invariants every
// viewer depends on: the document parses, slices ("X") carry
// durations, phases nest (a slice never extends past the next event on
// its lane that the sort placed after it), and timestamps are
// monotonic per tid.
func TestChromeTraceStructure(t *testing.T) {
	raw := buildTrace(t)
	var doc traceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	metaNames := map[int]bool{}
	lastTs := map[int]uint64{}
	var slices, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			metaNames[e.Tid] = true
			continue
		case "X":
			slices++
			if e.Dur == nil {
				t.Errorf("slice %q has no dur", e.Name)
			}
		case "i":
			instants++
		case "C":
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
		if e.Ts == nil {
			t.Errorf("event %q (ph %s) has no ts", e.Name, e.Ph)
			continue
		}
		if *e.Ts < lastTs[e.Tid] {
			t.Errorf("tid %d: ts %d after %d — not monotonic", e.Tid, *e.Ts, lastTs[e.Tid])
		}
		lastTs[e.Tid] = *e.Ts
	}
	for tid := tidFrontend; tid <= tidControl; tid++ {
		if !metaNames[tid] {
			t.Errorf("lane %d (%s) has no thread_name metadata", tid, tidNames[tid])
		}
	}
	// Fetch→dispatch, dispatch→issue, issue→complete, complete→retire
	// for uop 1, fetch→dispatch for uop 2, plus the gated interval.
	if slices != 6 {
		t.Errorf("slices = %d, want 6", slices)
	}
	// Squash, low-confidence estimate, reversal.
	if instants != 3 {
		t.Errorf("instants = %d, want 3", instants)
	}
}

// TestChromeTraceSquashDropsSpan checks a squashed uop never produces
// stage slices after its squash.
func TestChromeTraceSquashDropsSpan(t *testing.T) {
	var buf bytes.Buffer
	ct := NewChromeTrace(&buf)
	ct.Emit(Event{Kind: EvFetch, Cycle: 0, Seq: 9, PC: 0x99})
	ct.Emit(Event{Kind: EvSquashUop, Cycle: 1, Seq: 9})
	// Events for a dead seq must be ignored, not crash or emit.
	ct.Emit(Event{Kind: EvDispatch, Cycle: 2, Seq: 9})
	ct.Emit(Event{Kind: EvRetire, Cycle: 3, Seq: 9})
	if err := ct.Close(); err != nil {
		t.Fatal(err)
	}
	var doc traceDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			t.Errorf("squashed uop produced slice %q", e.Name)
		}
	}
}
