package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the opt-in live-introspection endpoint (-debug-addr):
// net/http/pprof profiling, expvar counters, and caller-registered
// live variables (sweep progress, cache hit rates, worker utilization)
// under /debug/vars and /debug/live, plus a Prometheus text-format
// rendering of the same vars under /metrics. It runs beside a simulation or
// sweep and dies with the process; it holds no simulator state itself,
// only the closures handed to Publish.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	vars map[string]func() any
}

// StartDebug listens on addr (host:port; use ":0" for an ephemeral
// port) and serves in a background goroutine. vars maps a name to a
// closure sampled at request time; closures must be safe to call from
// the serving goroutine (read atomics, not plain simulator fields).
func StartDebug(addr string, vars map[string]func() any) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listen %s: %w", addr, err)
	}
	d := &DebugServer{ln: ln, vars: vars}
	// Mirror the live vars into the process-global expvar namespace so
	// standard tooling that scrapes /debug/vars sees them. Re-publishing
	// a name (second server in one process, e.g. tests) keeps the first
	// registration; /debug/live always serves this server's own vars.
	for name, fn := range vars {
		if expvar.Get(name) == nil {
			expvar.Publish(name, expvar.Func(fn))
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/live", d.serveLive)
	mux.HandleFunc("/metrics", d.servePrometheus)
	d.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go d.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return d, nil
}

// serveLive renders the registered vars as one JSON object with stable
// key order.
func (d *DebugServer) serveLive(w http.ResponseWriter, _ *http.Request) {
	m := make(map[string]any, len(d.vars))
	for name, fn := range d.vars {
		m[name] = fn()
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprint(w, "{")
	for i, name := range sortedVarNames(m) {
		if i > 0 {
			fmt.Fprint(w, ",")
		}
		b, err := json.Marshal(m[name])
		if err != nil {
			b = []byte(fmt.Sprintf("%q", err.Error()))
		}
		fmt.Fprintf(w, "%q:%s", name, b)
	}
	fmt.Fprintln(w, "}")
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }
