package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"
)

// DebugServer is the opt-in live-introspection endpoint (-debug-addr):
// net/http/pprof profiling, expvar counters, and caller-registered
// live variables (sweep progress, cache hit rates, worker utilization)
// under /debug/vars and /debug/live, plus a Prometheus text-format
// rendering of the same vars under /metrics, an SSE stream of the live
// vars under /debug/progress, and /healthz + /readyz probes. It runs
// beside a simulation or sweep and dies with the process; it holds no
// simulator state itself, only the closures handed to Publish.
type DebugServer struct {
	ln    net.Listener
	srv   *http.Server
	vars  map[string]func() any
	ready atomic.Pointer[func() bool]
}

// StartDebug listens on addr (host:port; use ":0" for an ephemeral
// port) and serves in a background goroutine. vars maps a name to a
// closure sampled at request time; closures must be safe to call from
// the serving goroutine (read atomics, not plain simulator fields).
func StartDebug(addr string, vars map[string]func() any) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: debug listen %s: %w", addr, err)
	}
	d := &DebugServer{ln: ln, vars: vars}
	// Mirror the live vars into the process-global expvar namespace so
	// standard tooling that scrapes /debug/vars sees them. Re-publishing
	// a name (second server in one process, e.g. tests) keeps the first
	// registration; /debug/live always serves this server's own vars.
	for name, fn := range vars {
		if expvar.Get(name) == nil {
			expvar.Publish(name, expvar.Func(fn))
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", GetOnly(expvar.Handler().ServeHTTP))
	mux.Handle("/debug/live", GetOnly(d.serveLive))
	mux.Handle("/debug/progress", GetOnly(d.serveProgress))
	mux.Handle("/metrics", GetOnly(d.servePrometheus))
	mux.Handle("/healthz", GetOnly(serveHealthz))
	mux.Handle("/readyz", GetOnly(d.serveReadyz))
	d.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go d.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	return d, nil
}

// GetOnly wraps a handler func to reject any method but GET and HEAD
// with 405 (and a correct Allow header) — probe and scrape endpoints
// are read-only by contract.
func GetOnly(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	})
}

// SetReady installs the /readyz probe predicate. Until called (or with
// a nil predicate) the server reports ready as soon as it is serving.
func (d *DebugServer) SetReady(fn func() bool) {
	if fn == nil {
		d.ready.Store(nil)
		return
	}
	d.ready.Store(&fn)
}

// serveHealthz is liveness: the process is up and serving HTTP.
func serveHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// serveReadyz is readiness: the process is willing to take work.
func (d *DebugServer) serveReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if fn := d.ready.Load(); fn != nil && !(*fn)() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	fmt.Fprintln(w, "ok")
}

// renderLive samples every registered var into one JSON object with
// stable key order.
func (d *DebugServer) renderLive() []byte {
	m := make(map[string]any, len(d.vars))
	for name, fn := range d.vars {
		m[name] = fn()
	}
	buf := []byte("{")
	for i, name := range sortedVarNames(m) {
		if i > 0 {
			buf = append(buf, ',')
		}
		b, err := json.Marshal(m[name])
		if err != nil {
			b = []byte(fmt.Sprintf("%q", err.Error()))
		}
		buf = append(buf, fmt.Sprintf("%q:", name)...)
		buf = append(buf, b...)
	}
	return append(buf, '}')
}

// serveLive renders the registered vars as one JSON object.
func (d *DebugServer) serveLive(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(d.renderLive(), '\n')) //nolint:errcheck // best-effort debug reply
}

// serveProgress streams the live vars as Server-Sent Events: one
// `data: {...}` JSON frame per interval (query param "interval", Go
// duration syntax, default 1s, floor 100ms) until the client hangs up.
// `curl -N .../debug/progress?interval=500ms` tails a sweep live.
func (d *DebugServer) serveProgress(w http.ResponseWriter, r *http.Request) {
	interval := time.Second
	if q := r.URL.Query().Get("interval"); q != "" {
		dur, err := time.ParseDuration(q)
		if err != nil {
			// Bare numbers are seconds, as a convenience.
			if secs, err2 := strconv.Atoi(q); err2 == nil && secs > 0 {
				dur, err = time.Duration(secs)*time.Second, nil
			}
		}
		if err != nil || dur <= 0 {
			http.Error(w, "bad interval", http.StatusBadRequest)
			return
		}
		interval = max(dur, 100*time.Millisecond)
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		if _, err := fmt.Fprintf(w, "data: %s\n\n", d.renderLive()); err != nil {
			return
		}
		flusher.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the server.
func (d *DebugServer) Close() error { return d.srv.Close() }
