package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func TestDebugServer(t *testing.T) {
	calls := 0
	srv, err := StartDebug("127.0.0.1:0", map[string]func() any{
		"test_live_var": func() any {
			calls++
			return map[string]int{"value": calls}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	var live map[string]map[string]int
	if err := json.Unmarshal(get("/debug/live"), &live); err != nil {
		t.Fatalf("/debug/live is not valid JSON: %v", err)
	}
	if live["test_live_var"]["value"] < 1 {
		t.Errorf("/debug/live = %v, var not sampled", live)
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if _, ok := vars["test_live_var"]; !ok {
		t.Errorf("/debug/vars missing published var (keys: %d)", len(vars))
	}

	if b := get("/debug/pprof/"); len(b) == 0 {
		t.Error("/debug/pprof/ empty")
	}

	// The var closure is sampled per request, not cached.
	before := calls
	get("/debug/live")
	if calls <= before {
		t.Error("live var not re-sampled per request")
	}
}

func TestDebugServerHandlerHygiene(t *testing.T) {
	srv, err := StartDebug("127.0.0.1:0", map[string]func() any{
		"test_hygiene_var": func() any { return map[string]int{"n": 1} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Read-only endpoints reject non-GET with 405 and an Allow header.
	for _, path := range []string{"/debug/live", "/debug/vars", "/metrics", "/healthz", "/readyz", "/debug/progress"} {
		resp, err := http.Post(base+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
			t.Errorf("POST %s: Allow = %q", path, allow)
		}
	}

	// Content types.
	for path, want := range map[string]string{
		"/debug/live": "application/json",
		"/metrics":    "text/plain; version=0.0.4; charset=utf-8",
		"/healthz":    "text/plain; charset=utf-8",
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if got := resp.Header.Get("Content-Type"); got != want {
			t.Errorf("GET %s: Content-Type = %q, want %q", path, got, want)
		}
	}

	// Readiness follows the installed predicate; liveness does not.
	status := func(path string) int {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz before SetReady: status %d", got)
	}
	ready := false
	srv.SetReady(func() bool { return ready })
	if got := status("/readyz"); got != http.StatusServiceUnavailable {
		t.Errorf("/readyz while not ready: status %d, want 503", got)
	}
	if got := status("/healthz"); got != http.StatusOK {
		t.Errorf("/healthz while not ready: status %d, want 200", got)
	}
	ready = true
	if got := status("/readyz"); got != http.StatusOK {
		t.Errorf("/readyz when ready: status %d", got)
	}
}

func TestDebugServerProgressStream(t *testing.T) {
	srv, err := StartDebug("127.0.0.1:0", map[string]func() any{
		"test_sse_var": func() any { return map[string]int{"n": 7} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+srv.Addr()+"/debug/progress?interval=100ms", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	// Read two SSE frames, then hang up.
	sc := bufio.NewScanner(resp.Body)
	frames := 0
	for sc.Scan() && frames < 2 {
		line := sc.Text()
		if line == "" {
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			t.Fatalf("non-SSE line %q", line)
		}
		var live map[string]map[string]int
		if err := json.Unmarshal([]byte(data), &live); err != nil {
			t.Fatalf("frame is not JSON: %v (%q)", err, data)
		}
		if live["test_sse_var"]["n"] != 7 {
			t.Fatalf("frame = %v", live)
		}
		frames++
	}
	if frames < 2 {
		t.Fatalf("got %d frames, want 2 (scan err: %v)", frames, sc.Err())
	}

	// A malformed interval is a 400, not a hung stream.
	resp2, err := http.Get("http://" + srv.Addr() + "/debug/progress?interval=sideways")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad interval: status %d, want 400", resp2.StatusCode)
	}
}

func TestDebugServerSecondInstance(t *testing.T) {
	// Publishing the same expvar name twice must not panic; the second
	// server still serves its own vars on /debug/live.
	mk := func() *DebugServer {
		srv, err := StartDebug("127.0.0.1:0", map[string]func() any{
			"test_dup_var": func() any { return 1 },
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	a := mk()
	defer a.Close()
	b := mk()
	defer b.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/live", b.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var live map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&live); err != nil {
		t.Fatal(err)
	}
	if live["test_dup_var"] != 1 {
		t.Errorf("second server /debug/live = %v", live)
	}
}
