package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
)

func TestDebugServer(t *testing.T) {
	calls := 0
	srv, err := StartDebug("127.0.0.1:0", map[string]func() any{
		"test_live_var": func() any {
			calls++
			return map[string]int{"value": calls}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	var live map[string]map[string]int
	if err := json.Unmarshal(get("/debug/live"), &live); err != nil {
		t.Fatalf("/debug/live is not valid JSON: %v", err)
	}
	if live["test_live_var"]["value"] < 1 {
		t.Errorf("/debug/live = %v, var not sampled", live)
	}

	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if _, ok := vars["test_live_var"]; !ok {
		t.Errorf("/debug/vars missing published var (keys: %d)", len(vars))
	}

	if b := get("/debug/pprof/"); len(b) == 0 {
		t.Error("/debug/pprof/ empty")
	}

	// The var closure is sampled per request, not cached.
	before := calls
	get("/debug/live")
	if calls <= before {
		t.Error("live var not re-sampled per request")
	}
}

func TestDebugServerSecondInstance(t *testing.T) {
	// Publishing the same expvar name twice must not panic; the second
	// server still serves its own vars on /debug/live.
	mk := func() *DebugServer {
		srv, err := StartDebug("127.0.0.1:0", map[string]func() any{
			"test_dup_var": func() any { return 1 },
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	a := mk()
	defer a.Close()
	b := mk()
	defer b.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/live", b.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var live map[string]int
	if err := json.NewDecoder(resp.Body).Decode(&live); err != nil {
		t.Fatal(err)
	}
	if live["test_dup_var"] != 1 {
		t.Errorf("second server /debug/live = %v", live)
	}
}
