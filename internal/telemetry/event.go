// Package telemetry is the simulator's observability layer: a
// low-overhead event stream threaded through the pipeline stages and
// confidence estimators, a typed counters/histograms registry backing
// the per-run statistics, and exporters that turn the stream into
// artifacts — a Chrome trace_event timeline for chrome://tracing or
// Perfetto, a per-branch-PC confidence audit CSV, and a live debug
// HTTP endpoint (pprof + expvar).
//
// The design constraint is that observability must cost nothing when
// it is off: the pipeline holds a Sink interface value and guards
// every emission with a nil check, so an untraced simulation executes
// the same instruction stream it did before this package existed, and
// a traced simulation produces byte-identical metrics.
package telemetry

// EventKind discriminates telemetry events.
type EventKind uint8

const (
	// EvFetch: a uop entered the front end (Seq, PC, WrongPath).
	EvFetch EventKind = iota
	// EvDispatch: a uop was renamed into the ROB and a scheduling
	// window.
	EvDispatch
	// EvIssue: a uop was selected for execution.
	EvIssue
	// EvComplete: a uop's execution latency elapsed.
	EvComplete
	// EvRetire: a uop retired architecturally.
	EvRetire
	// EvSquashUop: one in-flight uop was squashed by misprediction
	// recovery.
	EvSquashUop
	// EvSquash: one recovery event; N is the number of uops squashed,
	// Seq the diverging branch.
	EvSquash
	// EvPredict: the branch predictor produced a direction (Taken) for
	// the conditional branch at PC.
	EvPredict
	// EvEstimate: the confidence estimator classified a prediction;
	// Band is the confidence band, Output the raw estimator output.
	EvEstimate
	// EvTrain: the confidence estimator trained on a resolved branch;
	// Mispred is whether the original prediction was wrong.
	EvTrain
	// EvReversal: a strongly-low-confidence prediction was reversed;
	// Mispred reports whether the reversal corrected a would-be
	// misprediction.
	EvReversal
	// EvGateArm: a low-confidence branch armed the pipeline-gating
	// counter.
	EvGateArm
	// EvGateOn: fetch gating engaged; N is the armed branch count.
	EvGateOn
	// EvGateOff: fetch gating released; N is the stall length in
	// cycles.
	EvGateOff
	// EvWatchdog: the forward-progress watchdog declared the pipeline
	// wedged; Seq is the last diverging branch, N the ROB occupancy.
	// The simulation aborts immediately after emitting it.
	EvWatchdog

	numEventKinds
)

var eventKindNames = [numEventKinds]string{
	"fetch", "dispatch", "issue", "complete", "retire",
	"squash-uop", "squash", "predict", "estimate", "train",
	"reversal", "gate-arm", "gate-on", "gate-off", "watchdog",
}

// String returns the event kind name.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "event(?)"
}

// Event is one simulator occurrence. It is a flat value type — no
// pointers, no allocation — so emitting one is a struct copy.
// Field meaning depends on Kind; unused fields are zero.
type Event struct {
	// Cycle is the simulated cycle the event occurred on.
	Cycle uint64
	// Seq is the uop's pipeline sequence number (0 when not tied to a
	// specific in-flight uop).
	Seq uint64
	// PC is the instruction address, where meaningful.
	PC uint64
	// N is a kind-specific magnitude (squash depth, gating counter,
	// stall length).
	N uint64
	// Output is the estimator's raw output (EvEstimate).
	Output int
	// Kind discriminates the event.
	Kind EventKind
	// Band is the confidence band (0 high, 1 weak-low, 2 strong-low)
	// for EvEstimate/EvTrain.
	Band uint8
	// Taken is the branch direction in play (predicted for EvPredict,
	// final for EvReversal, resolved for EvTrain).
	Taken bool
	// Mispred reports a wrong original prediction (EvTrain) or a
	// corrected one (EvReversal).
	Mispred bool
	// WrongPath marks events caused by wrong-path (to-be-squashed)
	// uops.
	WrongPath bool
}

// Sink consumes telemetry events. Implementations are called from the
// simulation goroutine, synchronously and in program order; they must
// not retain the Event (it is a value, so copying is retention
// enough). A nil Sink means telemetry is off, and emitters must check
// for nil rather than calling.
type Sink interface {
	Emit(Event)
}

// multiSink fans one stream out to several sinks.
type multiSink []Sink

// Emit implements Sink.
func (m multiSink) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// Multi combines sinks into one, dropping nils. It returns nil when
// nothing remains (telemetry off), and the sink itself when exactly
// one remains.
func Multi(sinks ...Sink) Sink {
	var kept multiSink
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	default:
		return kept
	}
}

// CountingSink counts events by kind — the cheapest possible live
// sink, used in tests and overhead benchmarks.
type CountingSink struct {
	counts [numEventKinds]uint64
}

// Emit implements Sink.
func (c *CountingSink) Emit(e Event) {
	if int(e.Kind) < len(c.counts) {
		c.counts[e.Kind]++
	}
}

// Count returns how many events of kind k were emitted.
func (c *CountingSink) Count(k EventKind) uint64 {
	if int(k) >= len(c.counts) {
		return 0
	}
	return c.counts[k]
}

// Total returns the total event count.
func (c *CountingSink) Total() uint64 {
	var t uint64
	for _, n := range c.counts {
		t += n
	}
	return t
}
