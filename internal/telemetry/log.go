package telemetry

// log.go is the structured-logging half of the observability layer:
// one log/slog configuration shared by all binaries (-log-level,
// -log-format), with a handler wrapper that stamps records written
// inside a traced region (ContextWithSpan) with their trace_id and
// span_id — the log↔trace correlation key. Logs go to stderr; stdout
// stays reserved for results, which is what the distributed
// byte-identity suite compares.

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
)

// ParseLogLevel maps a -log-level flag value to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds a trace-aware slog.Logger writing to w. format is
// "text" (the human default) or "json" (one object per line, for
// fleet log collection).
func NewLogger(w io.Writer, level slog.Level, format string) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "text", "":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
	return slog.New(&traceHandler{inner: h}), nil
}

// InitLogging parses the -log-level/-log-format flag values, installs
// the resulting logger as slog's process default (stderr), and returns
// it. Called once from each binary's main.
func InitLogging(level, format string) (*slog.Logger, error) {
	lv, err := ParseLogLevel(level)
	if err != nil {
		return nil, err
	}
	lg, err := NewLogger(os.Stderr, lv, format)
	if err != nil {
		return nil, err
	}
	slog.SetDefault(lg)
	return lg, nil
}

// traceHandler decorates every record whose context carries a span
// (ContextWithSpan) with trace_id/span_id attributes, then delegates.
type traceHandler struct {
	inner slog.Handler
}

func (h *traceHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h *traceHandler) Handle(ctx context.Context, r slog.Record) error {
	if sc, ok := SpanContextFrom(ctx); ok {
		r = r.Clone()
		r.AddAttrs(
			slog.String("trace_id", sc.TraceID),
			slog.String("span_id", sc.SpanID),
		)
	}
	return h.inner.Handle(ctx, r)
}

func (h *traceHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &traceHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h *traceHandler) WithGroup(name string) slog.Handler {
	return &traceHandler{inner: h.inner.WithGroup(name)}
}
