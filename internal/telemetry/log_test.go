package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestParseLogLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn, "ERROR": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("ParseLogLevel must reject unknown levels")
	}
	if _, err := NewLogger(&bytes.Buffer{}, slog.LevelInfo, "xml"); err == nil {
		t.Error("NewLogger must reject unknown formats")
	}
}

// TestLoggerTraceCorrelation: a record written with a span-carrying
// context carries trace_id/span_id; one without a span does not.
func TestLoggerTraceCorrelation(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, slog.LevelDebug, "json")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer("coordinator")
	span := tr.StartTrace("sweep")
	ctx := ContextWithSpan(context.Background(), span)

	lg.InfoContext(ctx, "batch sent", "worker", "w1")
	lg.InfoContext(context.Background(), "untraced line")
	span.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 log lines, got %d: %q", len(lines), buf.String())
	}
	var traced, plain map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &traced); err != nil {
		t.Fatalf("traced line is not JSON: %v", err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &plain); err != nil {
		t.Fatalf("plain line is not JSON: %v", err)
	}
	sc := span.Context()
	if traced["trace_id"] != sc.TraceID || traced["span_id"] != sc.SpanID {
		t.Errorf("traced record ids = %v/%v, want %v/%v",
			traced["trace_id"], traced["span_id"], sc.TraceID, sc.SpanID)
	}
	if traced["worker"] != "w1" || traced["msg"] != "batch sent" {
		t.Errorf("traced record lost its own attrs: %v", traced)
	}
	if _, ok := plain["trace_id"]; ok {
		t.Errorf("untraced record must not carry trace_id: %v", plain)
	}
}

// The trace decoration must survive WithAttrs/WithGroup derivation,
// which loggers commonly use for component prefixes.
func TestLoggerTraceCorrelationDerived(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, slog.LevelInfo, "text")
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer("worker")
	span := tr.StartTrace("exec")
	defer span.End()
	ctx := ContextWithSpan(context.Background(), span)

	lg.With("component", "dist").WithGroup("g").InfoContext(ctx, "hello")
	out := buf.String()
	if !strings.Contains(out, "trace_id="+span.Context().TraceID) {
		t.Errorf("derived logger dropped trace correlation: %q", out)
	}
	if !strings.Contains(out, "component=dist") {
		t.Errorf("derived logger dropped its attrs: %q", out)
	}
}
