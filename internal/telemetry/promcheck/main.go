// Command promcheck validates a Prometheus text-format exposition page
// on stdin using the repository's own parser, for CI smoke checks:
//
//	curl -s http://host/metrics | go run ./internal/telemetry/promcheck bce_build_info bce_dist
//
// Each argument is a metric-name prefix that must match at least one
// sample. Exits nonzero (with a diagnostic on stderr) if the page does
// not parse or a required metric is missing.
package main

import (
	"fmt"
	"os"
	"strings"

	"bce/internal/telemetry"
)

func main() {
	m, err := telemetry.ParsePromText(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: exposition does not parse: %v\n", err)
		os.Exit(1)
	}
	if len(m.Samples) == 0 {
		fmt.Fprintln(os.Stderr, "promcheck: exposition page has no samples")
		os.Exit(1)
	}
	bad := false
	for _, want := range os.Args[1:] {
		found := false
		for _, s := range m.Samples {
			if strings.HasPrefix(s.Name, want) {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "promcheck: no sample matching prefix %q\n", want)
			bad = true
		}
	}
	if bad {
		os.Exit(1)
	}
	fmt.Printf("promcheck: ok (%d samples, %d typed metrics)\n", len(m.Samples), len(m.Types))
}
