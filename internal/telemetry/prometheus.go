package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// prometheus.go renders the debug server's live vars in the Prometheus
// text exposition format (version 0.0.4), so a live sweep can be
// scraped by any Prometheus-compatible collector with zero extra
// dependencies: the same closures that feed /debug/live feed /metrics.
//
// The mapping is mechanical. Every numeric leaf becomes one gauge
// sample named <var>_<path...> (sanitized); registry Snapshots get
// first-class treatment (counters by name, histograms as
// _count/_sum/_max/_mean). Strings and arrays have no Prometheus
// representation and are skipped. Everything is emitted in sorted
// order, so scrapes diff cleanly.

// servePrometheus renders every registered var as Prometheus text,
// headed by the process's bce_build_info identity gauge.
func (d *DebugServer) servePrometheus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	WriteBuildInfo(w)
	names := make([]string, 0, len(d.vars))
	for name := range d.vars {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		WritePrometheus(w, name, d.vars[name]())
	}
}

// WritePrometheus writes v's numeric leaves as Prometheus gauge
// samples prefixed with prefix. Snapshot values (by value or pointer)
// expand into their counters and histogram summaries; other values are
// flattened structurally through their JSON encoding, so anything the
// JSON debug endpoint can serve, this can scrape.
func WritePrometheus(w io.Writer, prefix string, v any) {
	switch s := v.(type) {
	case Snapshot:
		writeSnapshot(w, prefix, s)
		return
	case *Snapshot:
		if s != nil {
			writeSnapshot(w, prefix, *s)
		}
		return
	}
	// Structural flatten via JSON: numbers become float64, structs and
	// maps become map[string]any, and unexported or unserializable
	// detail drops out — exactly the visibility /debug/live has.
	buf, err := json.Marshal(v)
	if err != nil {
		return
	}
	var generic any
	if err := json.Unmarshal(buf, &generic); err != nil {
		return
	}
	flat := make(map[string]float64)
	flatten(sanitizeMetricName(prefix), generic, flat)
	writeGauges(w, flat)
}

func writeSnapshot(w io.Writer, prefix string, s Snapshot) {
	flat := make(map[string]float64, len(s.Counters)+7*len(s.Histograms))
	p := sanitizeMetricName(prefix)
	for _, c := range s.Counters {
		flat[p+"_"+sanitizeMetricName(c.Name)] = float64(c.Value)
	}
	for _, h := range s.Histograms {
		hp := p + "_" + sanitizeMetricName(h.Name)
		flat[hp+"_count"] = float64(h.Count)
		flat[hp+"_sum"] = float64(h.Sum)
		flat[hp+"_max"] = float64(h.Max)
		flat[hp+"_mean"] = h.Mean
		// Quantiles as plain gauges (not native-histogram quantile
		// labels): scrape-friendly and greppable, matching the
		// _count/_sum/_max convention above.
		flat[hp+"_p50"] = float64(h.P50)
		flat[hp+"_p95"] = float64(h.P95)
		flat[hp+"_p99"] = float64(h.P99)
	}
	writeGauges(w, flat)
}

// flatten walks a generic JSON value, recording every numeric leaf
// under an underscore-joined path. Booleans count as 0/1; strings,
// arrays and nulls are skipped.
func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case float64:
		out[prefix] = x
	case bool:
		if x {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	case map[string]any:
		for k, sub := range x {
			flatten(prefix+"_"+sanitizeMetricName(k), sub, out)
		}
	}
}

// writeGauges emits the samples sorted by name, each preceded by its
// HELP and TYPE lines.
func writeGauges(w io.Writer, flat map[string]float64) {
	names := make([]string, 0, len(flat))
	for name := range flat {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# HELP %s Live gauge sampled from the process debug vars.\n", name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatPromValue(flat[name]))
	}
}

// escapeLabelValue escapes a string for use inside a Prometheus label
// value: backslash, double quote, and newline per the text exposition
// format.
func escapeLabelValue(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// formatPromValue renders a sample value: integers without an
// exponent, everything else in Go's shortest float form (Prometheus
// accepts both).
func formatPromValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// sanitizeMetricName maps an arbitrary var name into the Prometheus
// metric-name alphabet [a-zA-Z0-9_:]; runs of other characters
// collapse to one underscore, and a leading digit gets one prefixed.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	lastUnderscore := false
	for i, r := range name {
		ok := r == ':' || r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !ok {
			if !lastUnderscore {
				b.WriteByte('_')
				lastUnderscore = true
			}
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
		lastUnderscore = r == '_'
	}
	return strings.TrimSuffix(b.String(), "_")
}
