package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
)

func TestWritePrometheusFlattensStructs(t *testing.T) {
	type stats struct {
		JobsDone  uint64  `json:"jobs_done"`
		Busy      int     `json:"busy_workers"`
		SweepDone bool    `json:"sweep_done"`
		Rate      float64 `json:"rate"`
		Name      string  `json:"name"` // non-numeric: skipped
	}
	var b strings.Builder
	WritePrometheus(&b, "bce_runner", stats{JobsDone: 7, Busy: 2, SweepDone: true, Rate: 0.5, Name: "x"})
	got := b.String()
	for _, want := range []string{
		"# TYPE bce_runner_jobs_done gauge\nbce_runner_jobs_done 7\n",
		"bce_runner_busy_workers 2\n",
		"bce_runner_sweep_done 1\n",
		"bce_runner_rate 0.5\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "name") {
		t.Errorf("string field leaked into exposition:\n%s", got)
	}
}

func TestWritePrometheusSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("fetch.uops").Add(42)
	h := r.Histogram("flush.depth")
	h.Observe(3)
	h.Observe(5)
	var b strings.Builder
	WritePrometheus(&b, "bce_sim", r.Snapshot())
	got := b.String()
	for _, want := range []string{
		"bce_sim_fetch_uops 42\n",
		"bce_sim_flush_depth_count 2\n",
		"bce_sim_flush_depth_sum 8\n",
		"bce_sim_flush_depth_max 5\n",
		"bce_sim_flush_depth_mean 4\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestWritePrometheusDeterministicOrder(t *testing.T) {
	v := map[string]any{"b": 2, "a": 1, "c": map[string]any{"z": 9, "y": 8}}
	render := func() string {
		var b strings.Builder
		WritePrometheus(&b, "m", v)
		return b.String()
	}
	first := render()
	for i := 0; i < 10; i++ {
		if got := render(); got != first {
			t.Fatalf("exposition order unstable:\n%s\nvs\n%s", first, got)
		}
	}
	ia, ib := strings.Index(first, "m_a"), strings.Index(first, "m_b")
	if ia == -1 || ib == -1 || ia > ib {
		t.Errorf("samples not sorted:\n%s", first)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"bce_runner":     "bce_runner",
		"flush.depth":    "flush_depth",
		"9lives":         "_9lives",
		"a--b":           "a_b",
		"trailing.":      "trailing",
		"rate (percent)": "rate_percent",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// promLine matches the exposition format: TYPE comments and
// "name value" samples only.
var promLine = regexp.MustCompile(`^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* gauge|[a-zA-Z_:][a-zA-Z0-9_:]* -?[0-9].*)$`)

func TestMetricsEndpointServesValidExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("uops.executed").Add(11)
	srv, err := StartDebug("127.0.0.1:0", map[string]func() any{
		"test_prom_runner": func() any { return map[string]int{"jobs_done": 3} },
		"test_prom_sim":    func() any { return r.Snapshot() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	got := string(body)
	for _, line := range strings.Split(strings.TrimRight(got, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line %q", line)
		}
	}
	for _, want := range []string{
		"test_prom_runner_jobs_done 3\n",
		"test_prom_sim_uops_executed 11\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("/metrics missing %q:\n%s", want, got)
		}
	}
}
