package telemetry

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
)

func TestWritePrometheusFlattensStructs(t *testing.T) {
	type stats struct {
		JobsDone  uint64  `json:"jobs_done"`
		Busy      int     `json:"busy_workers"`
		SweepDone bool    `json:"sweep_done"`
		Rate      float64 `json:"rate"`
		Name      string  `json:"name"` // non-numeric: skipped
	}
	var b strings.Builder
	WritePrometheus(&b, "bce_runner", stats{JobsDone: 7, Busy: 2, SweepDone: true, Rate: 0.5, Name: "x"})
	got := b.String()
	for _, want := range []string{
		"# TYPE bce_runner_jobs_done gauge\nbce_runner_jobs_done 7\n",
		"bce_runner_busy_workers 2\n",
		"bce_runner_sweep_done 1\n",
		"bce_runner_rate 0.5\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "name") {
		t.Errorf("string field leaked into exposition:\n%s", got)
	}
}

func TestWritePrometheusSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("fetch.uops").Add(42)
	h := r.Histogram("flush.depth")
	h.Observe(3)
	h.Observe(5)
	var b strings.Builder
	WritePrometheus(&b, "bce_sim", r.Snapshot())
	got := b.String()
	for _, want := range []string{
		"bce_sim_fetch_uops 42\n",
		"bce_sim_flush_depth_count 2\n",
		"bce_sim_flush_depth_sum 8\n",
		"bce_sim_flush_depth_max 5\n",
		"bce_sim_flush_depth_mean 4\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestWritePrometheusHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("batch.ms")
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	snap := r.Snapshot()
	if len(snap.Histograms) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	hv := snap.Histograms[0]
	// Snapshot quantiles are Histogram.Quantile clamped to the observed
	// max (the top bucket's upper edge can exceed anything seen).
	if hv.P50 != min(h.Quantile(0.5), h.Max()) ||
		hv.P95 != min(h.Quantile(0.95), h.Max()) ||
		hv.P99 != min(h.Quantile(0.99), h.Max()) {
		t.Errorf("snapshot quantiles (%d, %d, %d) disagree with clamped Histogram.Quantile (%d, %d, %d; max %d)",
			hv.P50, hv.P95, hv.P99, h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.Max())
	}
	if !(hv.P50 <= hv.P95 && hv.P95 <= hv.P99 && hv.P99 <= hv.Max) {
		t.Errorf("quantiles not monotone: %+v", hv)
	}

	var b strings.Builder
	WritePrometheus(&b, "bce_worker", snap)
	// The exposition page must carry the quantile gauges and satisfy
	// the same parser promcheck runs in CI.
	m, err := ParsePromText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("quantile exposition does not parse: %v", err)
	}
	for q, want := range map[string]uint64{
		"bce_worker_batch_ms_p50": hv.P50,
		"bce_worker_batch_ms_p95": hv.P95,
		"bce_worker_batch_ms_p99": hv.P99,
	} {
		s, ok := m.Get(q)
		if !ok {
			t.Errorf("gauge %s missing:\n%s", q, b.String())
			continue
		}
		if s.Value != float64(want) {
			t.Errorf("%s = %v, want %d", q, s.Value, want)
		}
		if m.Types[q] != "gauge" {
			t.Errorf("%s TYPE = %q, want gauge", q, m.Types[q])
		}
	}
}

func TestWritePrometheusDeterministicOrder(t *testing.T) {
	v := map[string]any{"b": 2, "a": 1, "c": map[string]any{"z": 9, "y": 8}}
	render := func() string {
		var b strings.Builder
		WritePrometheus(&b, "m", v)
		return b.String()
	}
	first := render()
	for i := 0; i < 10; i++ {
		if got := render(); got != first {
			t.Fatalf("exposition order unstable:\n%s\nvs\n%s", first, got)
		}
	}
	ia, ib := strings.Index(first, "m_a"), strings.Index(first, "m_b")
	if ia == -1 || ib == -1 || ia > ib {
		t.Errorf("samples not sorted:\n%s", first)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"bce_runner":     "bce_runner",
		"flush.depth":    "flush_depth",
		"9lives":         "_9lives",
		"a--b":           "a_b",
		"trailing.":      "trailing",
		"rate (percent)": "rate_percent",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestMetricsEndpointServesValidExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("uops.executed").Add(11)
	srv, err := StartDebug("127.0.0.1:0", map[string]func() any{
		"test_prom_runner": func() any { return map[string]int{"jobs_done": 3} },
		"test_prom_sim":    func() any { return r.Snapshot() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	// The page must round-trip through the repository's own
	// text-format parser — the same check CI's promcheck runs.
	m, err := ParsePromText(resp.Body)
	if err != nil {
		t.Fatalf("/metrics output does not parse as Prometheus text: %v", err)
	}
	if got := m.Value("test_prom_runner_jobs_done"); got != 3 {
		t.Errorf("test_prom_runner_jobs_done = %v, want 3", got)
	}
	if got := m.Value("test_prom_sim_uops_executed"); got != 11 {
		t.Errorf("test_prom_sim_uops_executed = %v, want 11", got)
	}
	// Every sample carries HELP and TYPE; the build-info gauge leads
	// the page with its go_version label.
	for _, s := range m.Samples {
		if m.Types[s.Name] == "" {
			t.Errorf("sample %s has no TYPE line", s.Name)
		}
		if m.Help[s.Name] == "" {
			t.Errorf("sample %s has no HELP line", s.Name)
		}
	}
	bi, ok := m.Get("bce_build_info")
	if !ok || bi.Value != 1 {
		t.Fatalf("bce_build_info missing or not 1: %+v", bi)
	}
	if bi.Labels["go_version"] == "" {
		t.Errorf("bce_build_info lacks go_version label: %v", bi.Labels)
	}
}

func TestWriteBuildInfoEscaping(t *testing.T) {
	RegisterBuildLabel("test escape!", "a\\b\"c\nd")
	defer func() {
		buildLabelMu.Lock()
		delete(buildLabels, "test_escape")
		buildLabelMu.Unlock()
	}()
	var b strings.Builder
	WriteBuildInfo(&b)
	out := b.String()
	if !strings.Contains(out, `test_escape="a\\b\"c\nd"`) {
		t.Errorf("label not escaped per exposition format:\n%s", out)
	}
	m, err := ParsePromText(strings.NewReader(out))
	if err != nil {
		t.Fatalf("build info does not parse: %v", err)
	}
	bi, _ := m.Get("bce_build_info")
	if got := bi.Labels["test_escape"]; got != "a\\b\"c\nd" {
		t.Errorf("escape round-trip = %q, want %q", got, "a\\b\"c\nd")
	}
	if m.Types["bce_build_info"] != "gauge" || m.Help["bce_build_info"] == "" {
		t.Errorf("bce_build_info missing HELP/TYPE:\n%s", out)
	}
}

func TestParsePromText(t *testing.T) {
	page := `# HELP jobs Total jobs.
# TYPE jobs counter
jobs 41
# TYPE lat gauge
lat{worker="w1",q="0.99"} 1.5e-3 1700000000
# arbitrary comment
up 1
`
	m, err := ParsePromText(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Samples) != 3 {
		t.Fatalf("want 3 samples, got %+v", m.Samples)
	}
	if m.Value("jobs") != 41 || m.Types["jobs"] != "counter" || m.Help["jobs"] != "Total jobs." {
		t.Errorf("jobs parsed wrong: %+v", m)
	}
	lat, _ := m.Get("lat")
	if lat.Labels["worker"] != "w1" || lat.Labels["q"] != "0.99" || lat.Value != 1.5e-3 {
		t.Errorf("lat parsed wrong: %+v", lat)
	}

	for _, bad := range []string{
		"no_value\n",
		"1bad 3\n",
		"m{x=\"unterminated} 1\n",
		"m{x=\"v\"\n",
		"# TYPE m sideways\n",
		"m 1 2 3\n",
		"m notanumber\n",
	} {
		if _, err := ParsePromText(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePromText accepted malformed page %q", bad)
		}
	}
}
