package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// promparse.go is a small parser for the Prometheus text exposition
// format (version 0.0.4) — enough to validate our own /metrics output
// in tests and CI, and for the coordinator's fleet monitor to read
// worker metrics, without a client_golang dependency. It handles HELP
// and TYPE comments, labeled and unlabeled samples, and label-value
// escape sequences; it rejects anything else so malformed exposition
// fails loudly.

// PromSample is one parsed metric sample.
type PromSample struct {
	Name   string
	Labels map[string]string // nil when the sample has no labels
	Value  float64
}

// PromMetrics is a parsed exposition page.
type PromMetrics struct {
	Samples []PromSample
	// Types maps metric name to the declared TYPE (gauge, counter, …).
	Types map[string]string
	// Help maps metric name to its HELP text.
	Help map[string]string
}

// Get returns the first sample with the given name.
func (m *PromMetrics) Get(name string) (PromSample, bool) {
	for _, s := range m.Samples {
		if s.Name == name {
			return s, true
		}
	}
	return PromSample{}, false
}

// Value returns the value of the first sample with the given name, or
// 0 if absent.
func (m *PromMetrics) Value(name string) float64 {
	s, _ := m.Get(name)
	return s.Value
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// ParsePromText parses a text-format exposition page.
func ParsePromText(r io.Reader) (*PromMetrics, error) {
	m := &PromMetrics{Types: map[string]string{}, Help: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := m.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		m.Samples = append(m.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *PromMetrics) parseComment(line string) error {
	// "# HELP name text", "# TYPE name type"; any other comment is
	// allowed and ignored per the format.
	rest, ok := strings.CutPrefix(line, "# ")
	if !ok {
		return nil
	}
	kind, rest, _ := strings.Cut(rest, " ")
	switch kind {
	case "HELP":
		name, text, _ := strings.Cut(rest, " ")
		if !validMetricName(name) {
			return fmt.Errorf("HELP for invalid metric name %q", name)
		}
		m.Help[name] = text
	case "TYPE":
		name, typ, _ := strings.Cut(rest, " ")
		if !validMetricName(name) {
			return fmt.Errorf("TYPE for invalid metric name %q", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("metric %s has unknown TYPE %q", name, typ)
		}
		m.Types[name] = typ
	}
	return nil
}

func parseSample(line string) (PromSample, error) {
	var s PromSample
	rest := line
	// Metric name runs up to '{', space, or tab.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = rest[:end]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest = rest[end:]
	if strings.HasPrefix(rest, "{") {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", line, err)
		}
		s.Labels, rest = labels, tail
	}
	fields := strings.Fields(rest)
	// "value" or "value timestamp".
	if len(fields) != 1 && len(fields) != 2 {
		return s, fmt.Errorf("sample %q: want value [timestamp], got %q", line, rest)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value: %w", line, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a {k="v",...} block, returning the labels and
// the remainder of the line.
func parseLabels(rest string) (map[string]string, string, error) {
	labels := map[string]string{}
	rest = rest[1:] // consume '{'
	for {
		rest = strings.TrimLeft(rest, " \t")
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		name := strings.TrimSpace(rest[:eq])
		if !validMetricName(name) || strings.Contains(name, ":") {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("label %s: value not quoted", name)
		}
		val, tail, err := parseLabelValue(rest[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %w", name, err)
		}
		labels[name] = val
		rest = strings.TrimLeft(tail, " \t")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		}
	}
}

// parseLabelValue reads an escaped label value up to its closing quote.
func parseLabelValue(rest string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '"':
			return b.String(), rest[i+1:], nil
		case '\\':
			i++
			if i >= len(rest) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch rest[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", rest[i])
			}
		default:
			b.WriteByte(rest[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}
