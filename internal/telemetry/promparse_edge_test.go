package telemetry

import (
	"math"
	"strings"
	"testing"
)

// Edge cases of the text exposition format that real scrapes produce:
// escaped label values, the special float spellings (+Inf, -Inf, NaN),
// exponent-notation values, and the same metric name appearing on
// several samples (quantile/label series).

func TestParsePromTextEscapedLabelValues(t *testing.T) {
	page := `m{path="C:\\tmp\\x",msg="say \"hi\"",multi="a\nb"} 1` + "\n"
	m, err := ParsePromText(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	s, ok := m.Get("m")
	if !ok {
		t.Fatal("sample m missing")
	}
	if got := s.Labels["path"]; got != `C:\tmp\x` {
		t.Errorf("backslash escape = %q, want %q", got, `C:\tmp\x`)
	}
	if got := s.Labels["msg"]; got != `say "hi"` {
		t.Errorf("quote escape = %q, want %q", got, `say "hi"`)
	}
	if got := s.Labels["multi"]; got != "a\nb" {
		t.Errorf("newline escape = %q, want %q", got, "a\nb")
	}
	// Unknown escapes and dangling backslashes are malformed.
	for _, bad := range []string{
		`m{x="\q"} 1` + "\n",
		`m{x="trailing\` + "\n",
	} {
		if _, err := ParsePromText(strings.NewReader(bad)); err == nil {
			t.Errorf("accepted malformed escape %q", bad)
		}
	}
}

func TestParsePromTextSpecialFloats(t *testing.T) {
	page := `up_bound +Inf
down_bound -Inf
broken NaN
`
	m, err := ParsePromText(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Value("up_bound"); !math.IsInf(v, 1) {
		t.Errorf("+Inf parsed as %v", v)
	}
	if v := m.Value("down_bound"); !math.IsInf(v, -1) {
		t.Errorf("-Inf parsed as %v", v)
	}
	if s, ok := m.Get("broken"); !ok || !math.IsNaN(s.Value) {
		t.Errorf("NaN parsed as %+v", s)
	}
}

func TestParsePromTextExponentNotation(t *testing.T) {
	page := `tiny 1.5e-9
huge 2.25E+15
neg -3e2
labeled{q="0.5"} 9.109e-31
`
	m, err := ParsePromText(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]float64{
		"tiny":    1.5e-9,
		"huge":    2.25e+15,
		"neg":     -300,
		"labeled": 9.109e-31,
	}
	for name, want := range cases {
		if got := m.Value(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

func TestParsePromTextDuplicateMetricNames(t *testing.T) {
	// One metric name, many samples — the shape every labeled series
	// (and our _p50/_p95/_p99 trio's sibling, the summary form) takes.
	page := `# TYPE lat summary
lat{worker="w0"} 1
lat{worker="w1"} 2
lat{worker="w1"} 3
`
	m, err := ParsePromText(strings.NewReader(page))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Samples) != 3 {
		t.Fatalf("want all 3 duplicate-name samples kept, got %+v", m.Samples)
	}
	// Get returns the first, in page order.
	if s, _ := m.Get("lat"); s.Labels["worker"] != "w0" || s.Value != 1 {
		t.Errorf("Get returned %+v, want the first sample", s)
	}
	var sum float64
	for _, s := range m.Samples {
		if s.Name == "lat" {
			sum += s.Value
		}
	}
	if sum != 6 {
		t.Errorf("duplicate samples sum = %v, want 6", sum)
	}
	if m.Types["lat"] != "summary" {
		t.Errorf("TYPE lat = %q", m.Types["lat"])
	}
}
