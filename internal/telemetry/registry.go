package telemetry

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Counter is a monotonically increasing tally. It is deliberately not
// synchronized: one simulation runs on one goroutine, and an unshared
// uint64 increment through a pre-resolved pointer costs the same as a
// struct field increment — the property that lets the registry replace
// the pipeline's ad-hoc tallies without moving any timing numbers.
// Snapshot a Registry after the run (or from the owning goroutine) to
// read values safely.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current tally.
func (c *Counter) Value() uint64 { return c.v }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v = 0 }

// histBuckets is the fixed bucket count: bucket 0 holds the value 0,
// bucket i (i >= 1) holds values v with bits.Len64(v) == i, i.e. the
// range [2^(i-1), 2^i - 1].
const histBuckets = 65

// Histogram is a fixed-geometry log2 histogram of uint64 observations.
// Like Counter it is unsynchronized; Observe is a bit-length
// computation and three increments.
type Histogram struct {
	count   uint64
	sum     uint64
	max     uint64
	buckets [histBuckets]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	h.buckets[bits.Len64(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the average observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound on the q-quantile (q in [0, 1]) of
// the observed values: the upper edge of the first log2 bucket whose
// cumulative count reaches ⌈q·count⌉. The log2 geometry makes this at
// most 2× the true quantile — adequate for adaptive thresholds like
// "hedge past p95 latency", where the answer steers a policy rather
// than a report. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.count))
	if float64(target) < q*float64(h.count) {
		target++
	}
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= target {
			if i == 0 {
				return 0
			}
			return uint64(1)<<i - 1
		}
	}
	return h.max
}

// Reset zeroes the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Bucket is one non-empty log2 bucket: Count observations fell in
// [Lo, Hi] inclusive.
type Bucket struct {
	Lo, Hi uint64
	Count  uint64
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		b := Bucket{Count: n}
		if i > 0 {
			b.Lo = uint64(1) << (i - 1)
			b.Hi = b.Lo<<1 - 1
		}
		out = append(out, b)
	}
	return out
}

// Registry is an ordered collection of named counters and histograms.
// Metric handles are resolved once (at construction of the subsystem
// that owns them) and incremented directly, so registration cost never
// reaches a hot path. Not synchronized; see Counter.
type Registry struct {
	order      []string
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. It
// panics if the name is already a histogram.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a histogram", name))
	}
	c := &Counter{}
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Histogram returns the named histogram, creating it on first use. It
// panics if the name is already a counter.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.histograms[name]; ok {
		return h
	}
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a counter", name))
	}
	h := &Histogram{}
	r.histograms[name] = h
	r.order = append(r.order, name)
	return h
}

// Reset zeroes every metric (registrations are kept).
func (r *Registry) Reset() {
	for _, c := range r.counters {
		c.Reset()
	}
	for _, h := range r.histograms {
		h.Reset()
	}
}

// CounterValue is one counter in a snapshot.
type CounterValue struct {
	Name  string
	Value uint64
}

// HistogramValue is one histogram in a snapshot.
type HistogramValue struct {
	Name  string
	Count uint64
	Sum   uint64
	Max   uint64
	Mean  float64
	// P50/P95/P99 are Histogram.Quantile(0.5/0.95/0.99) at snapshot
	// time, clamped to Max: Quantile reports the upper edge of the log2
	// bucket holding the quantile, which for the top bucket can exceed
	// anything actually observed — fine for steering policies, wrong in
	// a report.
	P50     uint64
	P95     uint64
	P99     uint64
	Buckets []Bucket
}

// Snapshot is a point-in-time copy of a registry's metrics, in
// registration order.
type Snapshot struct {
	Counters   []CounterValue
	Histograms []HistogramValue
}

// Snapshot copies the current metric values.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	for _, name := range r.order {
		if c, ok := r.counters[name]; ok {
			s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
		} else if h, ok := r.histograms[name]; ok {
			s.Histograms = append(s.Histograms, HistogramValue{
				Name: name, Count: h.Count(), Sum: h.Sum(), Max: h.Max(),
				Mean:    h.Mean(),
				P50:     min(h.Quantile(0.5), h.Max()),
				P95:     min(h.Quantile(0.95), h.Max()),
				P99:     min(h.Quantile(0.99), h.Max()),
				Buckets: h.Buckets(),
			})
		}
	}
	return s
}

// Counter returns the named counter's value and whether it exists.
func (s Snapshot) Counter(name string) (uint64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

// Vars renders the snapshot as a flat name → value map, the shape the
// debug endpoint serves (histograms contribute count/sum/mean/max).
func (s Snapshot) Vars() map[string]any {
	m := make(map[string]any, len(s.Counters)+len(s.Histograms))
	for _, c := range s.Counters {
		m[c.Name] = c.Value
	}
	for _, h := range s.Histograms {
		m[h.Name+".count"] = h.Count
		m[h.Name+".sum"] = h.Sum
		m[h.Name+".mean"] = h.Mean
		m[h.Name+".max"] = h.Max
	}
	return m
}

// String renders the snapshot as an aligned two-column table with
// histogram bucket breakdowns, for terminal inspection (-stats).
func (s Snapshot) String() string {
	var b strings.Builder
	width := 0
	for _, c := range s.Counters {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	for _, h := range s.Histograms {
		if len(h.Name) > width {
			width = len(h.Name)
		}
	}
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "%-*s %12d\n", width, c.Name, c.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(&b, "%-*s %12d observations, mean %.1f, max %d\n",
			width, h.Name, h.Count, h.Mean, h.Max)
		for _, bk := range h.Buckets {
			fmt.Fprintf(&b, "%-*s   [%d..%d] %d\n", width, "", bk.Lo, bk.Hi, bk.Count)
		}
	}
	return b.String()
}

// sortedVarNames returns Vars keys in stable order (test helper shared
// with the debug endpoint rendering).
func sortedVarNames(m map[string]any) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
