package telemetry

import (
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("after Reset, Value() = %d, want 0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 3, 8, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("Count() = %d, want 7", h.Count())
	}
	if want := uint64(0 + 1 + 2 + 3 + 3 + 8 + 1<<40); h.Sum() != want {
		t.Errorf("Sum() = %d, want %d", h.Sum(), want)
	}
	if h.Max() != 1<<40 {
		t.Errorf("Max() = %d, want %d", h.Max(), uint64(1)<<40)
	}
	want := []Bucket{
		{Lo: 0, Hi: 0, Count: 1},               // value 0
		{Lo: 1, Hi: 1, Count: 1},               // value 1
		{Lo: 2, Hi: 3, Count: 3},               // values 2, 3, 3
		{Lo: 8, Hi: 15, Count: 1},              // value 8
		{Lo: 1 << 40, Hi: 1<<41 - 1, Count: 1}, // value 2^40
	}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("Buckets() = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestHistogramMeanEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 {
		t.Errorf("empty Mean() = %v, want 0", h.Mean())
	}
	h.Observe(4)
	h.Observe(8)
	if h.Mean() != 6 {
		t.Errorf("Mean() = %v, want 6", h.Mean())
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_second").Add(2)
	r.Counter("a_first").Add(1)
	r.Histogram("lat").Observe(5)
	// Get-or-create returns the same instance.
	r.Counter("a_first").Inc()

	s := r.Snapshot()
	if len(s.Counters) != 2 || len(s.Histograms) != 1 {
		t.Fatalf("snapshot shape: %d counters, %d histograms", len(s.Counters), len(s.Histograms))
	}
	// Registration order is preserved, not sorted.
	if s.Counters[0].Name != "b_second" || s.Counters[1].Name != "a_first" {
		t.Errorf("counter order = %q, %q; want registration order", s.Counters[0].Name, s.Counters[1].Name)
	}
	if v, ok := s.Counter("a_first"); !ok || v != 2 {
		t.Errorf("Counter(a_first) = %d, %v; want 2, true", v, ok)
	}
	if _, ok := s.Counter("missing"); ok {
		t.Error("Counter(missing) reported present")
	}

	vars := s.Vars()
	if vars["b_second"] != uint64(2) {
		t.Errorf("Vars[b_second] = %v", vars["b_second"])
	}
	if vars["lat.count"] != uint64(1) || vars["lat.sum"] != uint64(5) {
		t.Errorf("histogram vars = %v", vars)
	}

	out := s.String()
	for _, want := range []string{"b_second", "a_first", "lat", "[4..7] 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}

	r.Reset()
	if v, _ := r.Snapshot().Counter("a_first"); v != 0 {
		t.Errorf("after Reset, a_first = %d", v)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("Histogram on a counter name did not panic")
		}
	}()
	r.Histogram("x")
}

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() != nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) != nil")
	}
	a := &CountingSink{}
	if got := Multi(nil, a); got != Sink(a) {
		t.Errorf("Multi with one live sink returned %T, want the sink itself", got)
	}
	b := &CountingSink{}
	m := Multi(a, nil, b)
	m.Emit(Event{Kind: EvFetch})
	m.Emit(Event{Kind: EvRetire})
	for _, s := range []*CountingSink{a, b} {
		if s.Count(EvFetch) != 1 || s.Count(EvRetire) != 1 || s.Total() != 2 {
			t.Errorf("fan-out counts = fetch %d, retire %d, total %d",
				s.Count(EvFetch), s.Count(EvRetire), s.Total())
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if k.String() == "" || k.String() == "event(?)" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if EventKind(200).String() != "event(?)" {
		t.Error("out-of-range kind did not fall back")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile(0.5) = %d, want 0", got)
	}
	// 100 observations of 1ms..100ms (values land in log2 buckets
	// [1], [2..3], [4..7], ... [64..127]).
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %d, want 1 (first bucket edge)", got)
	}
	// p50: 50th value is 50, bucket [32..63] → upper edge 63.
	if got := h.Quantile(0.5); got != 63 {
		t.Errorf("Quantile(0.5) = %d, want 63", got)
	}
	// p99: 99th value is 99, bucket [64..127] → upper edge 127.
	if got := h.Quantile(0.99); got != 127 {
		t.Errorf("Quantile(0.99) = %d, want 127", got)
	}
	if got, want := h.Quantile(1), h.Quantile(0.999); got != 127 || want != 127 {
		t.Errorf("tail quantiles = %d, %d, want 127", got, want)
	}
	// Quantile never understates by more than the bucket geometry: the
	// returned edge is >= the true quantile.
	if got := h.Quantile(0.5); got < 50 {
		t.Errorf("Quantile(0.5) = %d, understates the true p50 of 50", got)
	}
	// Out-of-range q clamps instead of panicking.
	if h.Quantile(-1) != 1 || h.Quantile(2) != 127 {
		t.Errorf("clamped quantiles = %d, %d", h.Quantile(-1), h.Quantile(2))
	}

	// A histogram of only zeros reports 0 at every quantile.
	var z Histogram
	z.Observe(0)
	z.Observe(0)
	if z.Quantile(0.99) != 0 {
		t.Errorf("all-zero Quantile(0.99) = %d, want 0", z.Quantile(0.99))
	}
}
