package telemetry

import (
	"strings"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
	c.Reset()
	if got := c.Value(); got != 0 {
		t.Fatalf("after Reset, Value() = %d, want 0", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 3, 8, 1 << 40} {
		h.Observe(v)
	}
	if h.Count() != 7 {
		t.Errorf("Count() = %d, want 7", h.Count())
	}
	if want := uint64(0 + 1 + 2 + 3 + 3 + 8 + 1<<40); h.Sum() != want {
		t.Errorf("Sum() = %d, want %d", h.Sum(), want)
	}
	if h.Max() != 1<<40 {
		t.Errorf("Max() = %d, want %d", h.Max(), uint64(1)<<40)
	}
	want := []Bucket{
		{Lo: 0, Hi: 0, Count: 1},               // value 0
		{Lo: 1, Hi: 1, Count: 1},               // value 1
		{Lo: 2, Hi: 3, Count: 3},               // values 2, 3, 3
		{Lo: 8, Hi: 15, Count: 1},              // value 8
		{Lo: 1 << 40, Hi: 1<<41 - 1, Count: 1}, // value 2^40
	}
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("Buckets() = %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestHistogramMeanEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 {
		t.Errorf("empty Mean() = %v, want 0", h.Mean())
	}
	h.Observe(4)
	h.Observe(8)
	if h.Mean() != 6 {
		t.Errorf("Mean() = %v, want 6", h.Mean())
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_second").Add(2)
	r.Counter("a_first").Add(1)
	r.Histogram("lat").Observe(5)
	// Get-or-create returns the same instance.
	r.Counter("a_first").Inc()

	s := r.Snapshot()
	if len(s.Counters) != 2 || len(s.Histograms) != 1 {
		t.Fatalf("snapshot shape: %d counters, %d histograms", len(s.Counters), len(s.Histograms))
	}
	// Registration order is preserved, not sorted.
	if s.Counters[0].Name != "b_second" || s.Counters[1].Name != "a_first" {
		t.Errorf("counter order = %q, %q; want registration order", s.Counters[0].Name, s.Counters[1].Name)
	}
	if v, ok := s.Counter("a_first"); !ok || v != 2 {
		t.Errorf("Counter(a_first) = %d, %v; want 2, true", v, ok)
	}
	if _, ok := s.Counter("missing"); ok {
		t.Error("Counter(missing) reported present")
	}

	vars := s.Vars()
	if vars["b_second"] != uint64(2) {
		t.Errorf("Vars[b_second] = %v", vars["b_second"])
	}
	if vars["lat.count"] != uint64(1) || vars["lat.sum"] != uint64(5) {
		t.Errorf("histogram vars = %v", vars)
	}

	out := s.String()
	for _, want := range []string{"b_second", "a_first", "lat", "[4..7] 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}

	r.Reset()
	if v, _ := r.Snapshot().Counter("a_first"); v != 0 {
		t.Errorf("after Reset, a_first = %d", v)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("Histogram on a counter name did not panic")
		}
	}()
	r.Histogram("x")
}

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() != nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) != nil")
	}
	a := &CountingSink{}
	if got := Multi(nil, a); got != Sink(a) {
		t.Errorf("Multi with one live sink returned %T, want the sink itself", got)
	}
	b := &CountingSink{}
	m := Multi(a, nil, b)
	m.Emit(Event{Kind: EvFetch})
	m.Emit(Event{Kind: EvRetire})
	for _, s := range []*CountingSink{a, b} {
		if s.Count(EvFetch) != 1 || s.Count(EvRetire) != 1 || s.Total() != 2 {
			t.Errorf("fan-out counts = fetch %d, retire %d, total %d",
				s.Count(EvFetch), s.Count(EvRetire), s.Total())
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if k.String() == "" || k.String() == "event(?)" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if EventKind(200).String() != "event(?)" {
		t.Error("out-of-range kind did not fall back")
	}
}
