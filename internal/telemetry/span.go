package telemetry

// span.go is the distributed-tracing half of the telemetry layer: a
// lightweight span API for the coordinator/worker stack. A span is a
// named wall-clock interval with a trace identity (trace id, span id,
// optional parent) and string attributes; completed spans are collected
// by a Tracer and exported — locally or after crossing a process
// boundary — as one merged Chrome trace_event timeline (see
// spantrace.go). The simulator's cycle-level Sink/Event stream is a
// different instrument for a different timescale; spans measure the
// orchestration around simulations (shards, batches, jobs, RPCs), not
// the simulations' microarchitecture.
//
// Tracing is out-of-band by construction: spans never touch stdout,
// manifests, or cache keys, so a traced sweep is byte-identical to an
// untraced one.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// SpanContext is the cross-process identity of a span: enough to make
// a remote child. It travels over the dist wire protocol as HTTP
// headers (see internal/dist), never in message bodies, which is what
// keeps the wire schema version untouched.
type SpanContext struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
}

// Valid reports whether the context names a real span.
func (sc SpanContext) Valid() bool { return sc.TraceID != "" && sc.SpanID != "" }

// SpanData is one completed span in export/wire form. Times are
// microseconds (the Chrome trace_event unit): Start is absolute unix
// microseconds, Dur the span length.
type SpanData struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// Parent is the parent span id within the same trace; empty for a
	// trace root. The parent may live in another process.
	Parent string `json:"parent_id,omitempty"`
	Name   string `json:"name"`
	// Proc labels the process that produced the span (coordinator,
	// worker name); the merged timeline groups lanes by it.
	Proc  string            `json:"proc,omitempty"`
	Start int64             `json:"start_us"`
	Dur   int64             `json:"dur_us"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Context returns the span's propagation context.
func (d SpanData) Context() SpanContext {
	return SpanContext{TraceID: d.TraceID, SpanID: d.SpanID}
}

// Span is one in-flight traced interval. Start one with
// Tracer.StartTrace or Tracer.StartSpan, decorate it with SetAttr, and
// End it exactly once; End is idempotent (a second End is a no-op) and
// concurrent SetAttr/End calls are safe. A nil *Span is a valid no-op
// span, so call sites need no tracing-enabled guards.
type Span struct {
	tracer *Tracer
	start  time.Time

	mu    sync.Mutex
	data  SpanData
	ended atomic.Bool
}

// Context returns the span's propagation context (zero for nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return s.data.Context()
}

// SetAttr records a string attribute on the span. Later values win.
func (s *Span) SetAttr(key, value string) {
	if s == nil || s.ended.Load() {
		return
	}
	s.mu.Lock()
	if s.data.Attrs == nil {
		s.data.Attrs = make(map[string]string, 4)
	}
	s.data.Attrs[key] = value
	s.mu.Unlock()
}

// End completes the span and hands it to the tracer. Exactly the first
// End takes effect; the property test pins that every started span is
// ended exactly once even under concurrent shard execution.
func (s *Span) End() {
	if s == nil || !s.ended.CompareAndSwap(false, true) {
		return
	}
	t := s.tracer
	s.mu.Lock()
	d := s.data
	s.mu.Unlock()
	d.Dur = t.now().Sub(s.start).Microseconds()
	if d.Dur < 0 {
		d.Dur = 0
	}
	t.mu.Lock()
	t.done = append(t.done, d)
	t.mu.Unlock()
	t.ended.Add(1)
}

// Tracer creates spans and collects the completed ones. It is safe for
// concurrent use; a nil *Tracer is a valid disabled tracer whose spans
// are all nil (and therefore free no-ops).
type Tracer struct {
	proc string
	now  func() time.Time
	// newID returns n cryptographically random bytes, hex encoded;
	// overridable for deterministic tests.
	newID func(n int) string

	mu   sync.Mutex
	done []SpanData

	started atomic.Uint64
	ended   atomic.Uint64
}

// NewTracer returns a tracer stamping spans with the given process
// label ("coordinator", a worker name).
func NewTracer(proc string) *Tracer {
	return &Tracer{proc: proc, now: time.Now, newID: randomID}
}

// randomID returns n random bytes hex-encoded. Span identity only
// needs uniqueness across the processes of one sweep; crypto/rand
// avoids any seeding coordination.
func randomID(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic("telemetry: crypto/rand failed: " + err.Error())
	}
	return hex.EncodeToString(b)
}

// Proc returns the tracer's process label ("" for nil).
func (t *Tracer) Proc() string {
	if t == nil {
		return ""
	}
	return t.proc
}

// StartTrace starts a root span under a fresh trace id.
func (t *Tracer) StartTrace(name string) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, SpanContext{TraceID: t.newID(16)})
}

// StartSpan starts a child of parent. An invalid parent (zero
// SpanContext) yields nil: an untraced request stays untraced rather
// than growing an orphan trace.
func (t *Tracer) StartSpan(name string, parent SpanContext) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	return t.start(name, parent)
}

func (t *Tracer) start(name string, parent SpanContext) *Span {
	s := &Span{
		tracer: t,
		start:  t.now(),
		data: SpanData{
			TraceID: parent.TraceID,
			SpanID:  t.newID(8),
			Parent:  parent.SpanID,
			Name:    name,
			Proc:    t.proc,
		},
	}
	s.data.Start = s.start.UnixMicro()
	t.started.Add(1)
	return s
}

// Import merges completed spans from another process (a worker's reply)
// into this tracer's collection, verbatim.
func (t *Tracer) Import(spans []SpanData) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	t.done = append(t.done, spans...)
	t.mu.Unlock()
}

// Drain returns every completed span collected so far and clears the
// collection. Spans still in flight are not included; end them first.
func (t *Tracer) Drain() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := t.done
	t.done = nil
	t.mu.Unlock()
	return out
}

// Counts returns how many spans this tracer has started and ended —
// the balance the span-lifecycle property test checks. Imported spans
// count for neither.
func (t *Tracer) Counts() (started, ended uint64) {
	if t == nil {
		return 0, 0
	}
	return t.started.Load(), t.ended.Load()
}

// spanCtxKey carries a SpanContext through a context.Context for
// log↔trace correlation (see log.go).
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying the span's context; log records
// written through a trace-aware handler (NewLogger) within it carry
// trace_id/span_id attributes. A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s.Context())
}

// SpanContextFrom extracts the span context ContextWithSpan stored.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}
