package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// TestSpanLifecycleProperty is the concurrency property the distributed
// tracer must hold: under a shard-like fan-out (many goroutines, each
// opening nested spans, some racing duplicate End calls), every started
// span ends exactly once and exactly the started spans are drained.
// Run with -race.
func TestSpanLifecycleProperty(t *testing.T) {
	tr := NewTracer("coordinator")
	root := tr.StartTrace("sweep")

	const shards = 8
	const jobsPerShard = 25
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			shard := tr.StartSpan("shard", root.Context())
			shard.SetAttr("shard", fmt.Sprint(sh))
			var jw sync.WaitGroup
			for j := 0; j < jobsPerShard; j++ {
				jw.Add(1)
				go func(j int) {
					defer jw.Done()
					job := tr.StartSpan("job", shard.Context())
					job.SetAttr("job", fmt.Sprint(j))
					// Duplicate End from a racing goroutine must be a no-op.
					var ew sync.WaitGroup
					for k := 0; k < 2; k++ {
						ew.Add(1)
						go func() { defer ew.Done(); job.End() }()
					}
					ew.Wait()
				}(j)
			}
			jw.Wait()
			shard.End()
			shard.End() // sequential duplicate, also a no-op
		}(sh)
	}
	wg.Wait()
	root.End()

	wantSpans := uint64(1 + shards + shards*jobsPerShard)
	started, ended := tr.Counts()
	if started != wantSpans || ended != wantSpans {
		t.Fatalf("started=%d ended=%d, want both %d", started, ended, wantSpans)
	}
	spans := tr.Drain()
	if uint64(len(spans)) != wantSpans {
		t.Fatalf("drained %d spans, want %d", len(spans), wantSpans)
	}
	// Every span shares the root's trace id and has a resolvable parent.
	ids := make(map[string]bool, len(spans))
	for _, s := range spans {
		if s.TraceID != root.Context().TraceID {
			t.Fatalf("span %s has trace id %s, want %s", s.SpanID, s.TraceID, root.Context().TraceID)
		}
		if ids[s.SpanID] {
			t.Fatalf("duplicate span id %s", s.SpanID)
		}
		ids[s.SpanID] = true
	}
	for _, s := range spans {
		if s.Parent != "" && !ids[s.Parent] {
			t.Fatalf("span %s has unresolvable parent %s", s.SpanID, s.Parent)
		}
	}
	if again := tr.Drain(); len(again) != 0 {
		t.Fatalf("second Drain returned %d spans, want 0", len(again))
	}
}

func TestSpanNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.StartTrace("sweep")
	if s != nil {
		t.Fatal("nil tracer must return nil spans")
	}
	// All of these must be safe no-ops.
	s.SetAttr("k", "v")
	s.End()
	if s.Context().Valid() {
		t.Fatal("nil span context must be invalid")
	}
	if tr.StartSpan("child", SpanContext{TraceID: "t", SpanID: "s"}) != nil {
		t.Fatal("nil tracer StartSpan must return nil")
	}
	if got := tr.Drain(); got != nil {
		t.Fatal("nil tracer Drain must return nil")
	}
	tr.Import([]SpanData{{SpanID: "x"}})
	if st, en := tr.Counts(); st != 0 || en != 0 {
		t.Fatal("nil tracer counts must be zero")
	}

	// A live tracer refuses to start a child of an invalid parent: an
	// untraced request stays untraced.
	live := NewTracer("w")
	if live.StartSpan("child", SpanContext{}) != nil {
		t.Fatal("StartSpan with invalid parent must return nil")
	}
}

func TestContextWithSpan(t *testing.T) {
	tr := NewTracer("coordinator")
	s := tr.StartTrace("sweep")
	ctx := ContextWithSpan(context.Background(), s)
	sc, ok := SpanContextFrom(ctx)
	if !ok || sc != s.Context() {
		t.Fatalf("SpanContextFrom = %+v, %v; want %+v, true", sc, ok, s.Context())
	}
	if _, ok := SpanContextFrom(context.Background()); ok {
		t.Fatal("empty context must carry no span")
	}
	if got := ContextWithSpan(context.Background(), nil); got != context.Background() {
		t.Fatal("nil span must return ctx unchanged")
	}
}

// testTracer returns a tracer with deterministic time and ids so span
// output can be asserted exactly. base offsets both the clock and the
// id counter, standing in for the distinct id space and clock skew of
// a separate process.
func testTracer(proc string, base int64) *Tracer {
	tr := NewTracer(proc)
	tick := base
	tr.now = func() time.Time {
		tick += 100 // µs per observation
		return time.UnixMicro(1_000_000 + tick)
	}
	n := base
	tr.newID = func(size int) string {
		n++
		return fmt.Sprintf("%0*x", size*2, n)
	}
	return tr
}

func TestAssignLanes(t *testing.T) {
	// Intervals (already sorted by start, longer first):
	//   root   [0,100)            -> lane 1
	//   a      [10,40) parent root -> nests on lane 1
	//   b      [20,40) parent root -> overlaps a, spills to lane 2
	//   c      [50,60) parent root -> a and b expired, nests on lane 1...
	// c's parent root is top of lane 1 again after a expires, so lane 1.
	//   late   [200,210) no parent -> everything expired, lane 1
	spans := []SpanData{
		{SpanID: "root", Start: 0, Dur: 100},
		{SpanID: "a", Parent: "root", Start: 10, Dur: 30},
		{SpanID: "b", Parent: "root", Start: 20, Dur: 20},
		{SpanID: "c", Parent: "root", Start: 50, Dur: 10},
		{SpanID: "late", Start: 200, Dur: 10},
	}
	lanes := assignLanes(spans)
	want := map[string]int{"root": 1, "a": 1, "b": 2, "c": 1, "late": 1}
	for id, lane := range want {
		if lanes[id] != lane {
			t.Errorf("span %s on lane %d, want %d (all: %v)", id, lanes[id], lane, lanes)
		}
	}
}

func TestAssignLanesOrphanOverlap(t *testing.T) {
	// Two parentless overlapping spans must not share a lane.
	spans := []SpanData{
		{SpanID: "x", Start: 0, Dur: 50},
		{SpanID: "y", Start: 10, Dur: 50},
	}
	lanes := assignLanes(spans)
	if lanes["x"] == lanes["y"] {
		t.Fatalf("overlapping spans share lane %d", lanes["x"])
	}
}

// buildCrossProcessSpans simulates the shape of a real distributed
// sweep: a coordinator tracer owning sweep/shard/batch spans, a worker
// tracer producing child spans from the propagated context, and the
// worker's completed spans imported back into the coordinator — the
// exact merge path WriteSpanTrace renders.
func buildCrossProcessSpans() []SpanData {
	coord := testTracer("coordinator", 0)
	sweep := coord.StartTrace("sweep")
	sweep.SetAttr("jobs", "4")

	shard0 := coord.StartSpan("shard", sweep.Context())
	shard0.SetAttr("shard", "0")
	batch0 := coord.StartSpan("batch", shard0.Context())

	// The batch span's context crosses the wire as headers; the worker
	// builds its own tracer and parents its spans on the remote context.
	worker := testTracer("worker-1", 0x100)
	wbatch := worker.StartSpan("exec", batch0.Context())
	dec := worker.StartSpan("decode", wbatch.Context())
	dec.End()
	for j := 0; j < 2; j++ {
		job := worker.StartSpan("job", wbatch.Context())
		job.SetAttr("key", fmt.Sprintf("k%d", j))
		job.End()
	}
	enc := worker.StartSpan("encode", wbatch.Context())
	enc.End()
	wbatch.End()

	coord.Import(worker.Drain())
	batch0.End()
	shard0.End()
	sweep.End()
	return coord.Drain()
}

func TestWriteSpanTraceGolden(t *testing.T) {
	spans := buildCrossProcessSpans()
	var buf bytes.Buffer
	if err := WriteSpanTrace(&buf, spans); err != nil {
		t.Fatalf("WriteSpanTrace: %v", err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "span_trace_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("span trace differs from golden file %s\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestWriteSpanTraceMergesProcesses checks the structural invariants
// the CI trace check relies on, independent of golden bytes: valid
// JSON, one pid per process, a single shared trace id, and parent ids
// that resolve (possibly across processes).
func TestWriteSpanTraceMergesProcesses(t *testing.T) {
	spans := buildCrossProcessSpans()
	var buf bytes.Buffer
	if err := WriteSpanTrace(&buf, spans); err != nil {
		t.Fatalf("WriteSpanTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("merged trace is not valid JSON: %v", err)
	}
	procs := map[string]int{}
	traceIDs := map[string]bool{}
	spanIDs := map[string]bool{}
	var parents []string
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "process_name" {
			procs[e.Args["name"].(string)] = e.PID
		}
		if e.Ph == "X" {
			traceIDs[e.Args["trace_id"].(string)] = true
			spanIDs[e.Args["span_id"].(string)] = true
			if p, ok := e.Args["parent_id"].(string); ok {
				parents = append(parents, p)
			}
		}
	}
	if len(procs) != 2 || procs["coordinator"] == procs["worker-1"] {
		t.Fatalf("want 2 distinct pids for coordinator and worker-1, got %v", procs)
	}
	if len(traceIDs) != 1 {
		t.Fatalf("want exactly one trace id across processes, got %v", traceIDs)
	}
	for _, p := range parents {
		if !spanIDs[p] {
			t.Fatalf("parent id %s does not resolve to any span in the merged trace", p)
		}
	}
	if err := WriteSpanTrace(&bytes.Buffer{}, nil); err != nil {
		t.Fatalf("WriteSpanTrace with no spans: %v", err)
	}
}
