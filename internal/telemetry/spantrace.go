package telemetry

import (
	"fmt"
	"io"
	"sort"
)

// spantrace.go renders the spans of one distributed sweep — collected
// across coordinator and worker processes by Tracer/Import — as a
// single Chrome trace_event timeline, sharing the document writer with
// the simulator's ChromeTrace sink. Each producing process becomes a
// trace pid; within a process, spans are packed onto thread lanes so
// that a child span sits on its parent's lane when their intervals
// nest (the flame view) and overlapping siblings spill onto separate
// lanes instead of rendering on top of each other.

// spanLane is one open-span stack for a thread lane: the ids and end
// times of spans currently occupying the lane, innermost last.
type spanLane struct {
	ids  []string
	ends []int64
}

func (l *spanLane) top() (string, bool) {
	if len(l.ids) == 0 {
		return "", false
	}
	return l.ids[len(l.ids)-1], true
}

func (l *spanLane) expire(now int64) {
	for len(l.ends) > 0 && l.ends[len(l.ends)-1] <= now {
		l.ids = l.ids[:len(l.ids)-1]
		l.ends = l.ends[:len(l.ends)-1]
	}
}

func (l *spanLane) push(id string, end int64) {
	l.ids = append(l.ids, id)
	l.ends = append(l.ends, end)
}

// assignLanes gives each span (already sorted by start, then longer
// first) a 1-based lane number within its process. Greedy: a span goes
// on its parent's lane if the parent is the innermost span still open
// there, else on the first idle lane, else on a fresh one.
func assignLanes(spans []SpanData) map[string]int {
	lanes := make([]*spanLane, 0, 4)
	assigned := make(map[string]int, len(spans))
	for _, s := range spans {
		end := s.Start + s.Dur
		for _, l := range lanes {
			l.expire(s.Start)
		}
		lane := -1
		if s.Parent != "" {
			if pl, ok := assigned[s.Parent]; ok {
				if top, occupied := lanes[pl-1].top(); occupied && top == s.Parent {
					lane = pl - 1
				}
			}
		}
		if lane < 0 {
			for i, l := range lanes {
				if _, occupied := l.top(); !occupied {
					lane = i
					break
				}
			}
		}
		if lane < 0 {
			lanes = append(lanes, &spanLane{})
			lane = len(lanes) - 1
		}
		lanes[lane].push(s.SpanID, end)
		assigned[s.SpanID] = lane + 1
	}
	return assigned
}

// WriteSpanTrace writes the spans as one Chrome trace_event JSON
// document. Timestamps are rebased to the earliest span start so the
// timeline opens at t=0 regardless of wall-clock epoch; span identity
// (trace_id, span_id, parent_id) and attrs travel in each event's args
// so nesting can be checked programmatically, not just visually.
func WriteSpanTrace(w io.Writer, spans []SpanData) error {
	if len(spans) == 0 {
		return writeTraceDoc(w, nil)
	}
	// Stable processing order: by process, then start time, then longer
	// spans first (a parent sorts before children sharing its start),
	// then span id as the final determinism tiebreak.
	ordered := make([]SpanData, len(spans))
	copy(ordered, spans)
	sort.SliceStable(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Dur != b.Dur {
			return a.Dur > b.Dur
		}
		return a.SpanID < b.SpanID
	})

	base := ordered[0].Start
	procPID := make(map[string]int)
	for _, s := range ordered {
		if s.Start < base {
			base = s.Start
		}
		if _, ok := procPID[s.Proc]; !ok {
			procPID[s.Proc] = len(procPID) + 1 // sorted-proc order: ordered is proc-sorted
		}
	}

	var events []chromeEvent
	for proc, pid := range procPID {
		events = append(events, chromeEvent{ts: 0, pid: pid, tid: 0, fields: map[string]any{
			"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
			"args": map[string]any{"name": proc},
		}})
	}

	// Lane allocation is per process; slice the proc-sorted spans into
	// contiguous groups.
	for lo := 0; lo < len(ordered); {
		hi := lo
		for hi < len(ordered) && ordered[hi].Proc == ordered[lo].Proc {
			hi++
		}
		group := ordered[lo:hi]
		pid := procPID[group[0].Proc]
		lanes := assignLanes(group)
		maxLane := 0
		for _, s := range group {
			tid := lanes[s.SpanID]
			if tid > maxLane {
				maxLane = tid
			}
			args := map[string]any{
				"trace_id": s.TraceID,
				"span_id":  s.SpanID,
			}
			if s.Parent != "" {
				args["parent_id"] = s.Parent
			}
			for k, v := range s.Attrs {
				args[k] = v
			}
			events = append(events, chromeEvent{ts: uint64(s.Start - base), pid: pid, tid: tid, fields: map[string]any{
				"name": s.Name, "ph": "X",
				"ts": s.Start - base, "dur": s.Dur,
				"pid": pid, "tid": tid,
				"args": args,
			}})
		}
		for tid := 1; tid <= maxLane; tid++ {
			events = append(events, chromeEvent{ts: 0, pid: pid, tid: tid, fields: map[string]any{
				"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
				"args": map[string]any{"name": fmt.Sprintf("lane %d", tid)},
			}})
		}
		lo = hi
	}
	return writeTraceDoc(w, events)
}
