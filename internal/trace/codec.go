package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format:
//
//	header:  magic "BCET" | version u16 | flags u16
//	record:  kind u8 | flags u8 | pc varint-delta | then per-kind fields
//
// PCs are delta-encoded against the previous record's PC (zig-zag
// varint), which makes sequential code nearly free to store. Branch
// targets are delta-encoded against the branch's own PC.

const (
	magic         = "BCET"
	formatVersion = 1
)

const (
	recTaken   = 1 << 0 // branch direction
	recHasAddr = 1 << 1 // memory address present
	recHasRegs = 1 << 2 // register operands present
)

// ErrBadMagic is returned when a reader is pointed at a non-trace file.
var ErrBadMagic = errors.New("trace: bad magic (not a BCET trace)")

// ErrBadVersion is returned for traces written by an unknown format
// version.
var ErrBadVersion = errors.New("trace: unsupported format version")

// Writer encodes uops to a compact binary stream.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	n      uint64
	buf    []byte
	hdrOK  bool
}

// NewWriter returns a Writer emitting to w. The header is written on
// the first record (or on Flush for an empty trace).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 64)}
}

func (tw *Writer) header() error {
	if tw.hdrOK {
		return nil
	}
	tw.hdrOK = true
	if _, err := tw.w.WriteString(magic); err != nil {
		return err
	}
	var h [4]byte
	binary.LittleEndian.PutUint16(h[0:2], formatVersion)
	binary.LittleEndian.PutUint16(h[2:4], 0)
	_, err := tw.w.Write(h[:])
	return err
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// WriteUop appends one uop to the stream.
func (tw *Writer) WriteUop(u Uop) error {
	if !u.Kind.Valid() {
		return fmt.Errorf("trace: invalid kind %d", uint8(u.Kind))
	}
	if err := tw.header(); err != nil {
		return err
	}
	var flags uint8
	if u.Taken {
		flags |= recTaken
	}
	if u.Kind.IsMem() {
		flags |= recHasAddr
	}
	if u.Dst != NoReg || u.Src1 != NoReg || u.Src2 != NoReg {
		flags |= recHasRegs
	}
	b := tw.buf[:0]
	b = append(b, byte(u.Kind), flags)
	b = binary.AppendUvarint(b, zigzag(int64(u.PC)-int64(tw.lastPC)))
	tw.lastPC = u.PC
	if u.Kind.IsBranch() {
		b = binary.AppendUvarint(b, zigzag(int64(u.Target)-int64(u.PC)))
	}
	if flags&recHasAddr != 0 {
		b = binary.AppendUvarint(b, u.Addr)
	}
	if flags&recHasRegs != 0 {
		b = append(b, u.Dst, u.Src1, u.Src2)
	}
	tw.buf = b[:0]
	tw.n++
	_, err := tw.w.Write(b)
	return err
}

// Count reports the number of uops written so far.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush writes any buffered data (and the header, for an empty trace).
func (tw *Writer) Flush() error {
	if err := tw.header(); err != nil {
		return err
	}
	return tw.w.Flush()
}

// Reader decodes a binary trace stream. It implements Source.
type Reader struct {
	r      *bufio.Reader
	lastPC uint64
	err    error
	hdrOK  bool
}

// NewReader returns a Reader over r. The header is validated lazily on
// the first read.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (tr *Reader) checkHeader() error {
	if tr.hdrOK {
		return nil
	}
	tr.hdrOK = true
	var h [8]byte
	if _, err := io.ReadFull(tr.r, h[:]); err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	if string(h[0:4]) != magic {
		return ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(h[4:6]); v != formatVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	return nil
}

// ReadUop decodes the next uop. It returns io.EOF at a clean end of
// stream.
func (tr *Reader) ReadUop() (Uop, error) {
	if tr.err != nil {
		return Uop{}, tr.err
	}
	if err := tr.checkHeader(); err != nil {
		tr.err = err
		return Uop{}, err
	}
	kb, err := tr.r.ReadByte()
	if err != nil {
		tr.err = err
		return Uop{}, err
	}
	var u Uop
	u.Kind = Kind(kb)
	if !u.Kind.Valid() {
		tr.err = fmt.Errorf("trace: corrupt record: kind %d", kb)
		return Uop{}, tr.err
	}
	flags, err := tr.r.ReadByte()
	if err != nil {
		tr.err = eof2unexpected(err)
		return Uop{}, tr.err
	}
	u.Taken = flags&recTaken != 0
	d, err := binary.ReadUvarint(tr.r)
	if err != nil {
		tr.err = eof2unexpected(err)
		return Uop{}, tr.err
	}
	u.PC = uint64(int64(tr.lastPC) + unzigzag(d))
	tr.lastPC = u.PC
	if u.Kind.IsBranch() {
		td, err := binary.ReadUvarint(tr.r)
		if err != nil {
			tr.err = eof2unexpected(err)
			return Uop{}, tr.err
		}
		u.Target = uint64(int64(u.PC) + unzigzag(td))
	}
	u.Dst, u.Src1, u.Src2 = NoReg, NoReg, NoReg
	if flags&recHasAddr != 0 {
		if u.Addr, err = binary.ReadUvarint(tr.r); err != nil {
			tr.err = eof2unexpected(err)
			return Uop{}, tr.err
		}
	}
	if flags&recHasRegs != 0 {
		var regs [3]byte
		if _, err := io.ReadFull(tr.r, regs[:]); err != nil {
			tr.err = eof2unexpected(err)
			return Uop{}, tr.err
		}
		u.Dst, u.Src1, u.Src2 = regs[0], regs[1], regs[2]
	}
	return u, nil
}

func eof2unexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Next implements Source. A decode error terminates the stream; check
// Err afterwards.
func (tr *Reader) Next() (Uop, bool) {
	u, err := tr.ReadUop()
	if err != nil {
		return Uop{}, false
	}
	return u, true
}

// Err returns the terminal error, if any, excluding a clean io.EOF.
func (tr *Reader) Err() error {
	if tr.err == io.EOF {
		return nil
	}
	return tr.err
}
