package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary trace format:
//
//	header:  magic "BCET" | version u16 | flags u16
//	record:  kind u8 | flags u8 | pc varint-delta | then per-kind fields
//	footer:  0xFF | crc32 u32 | count uvarint            (version 2)
//
// PCs are delta-encoded against the previous record's PC (zig-zag
// varint), which makes sequential code nearly free to store. Branch
// targets are delta-encoded against the branch's own PC.
//
// Version 2 ends the stream with an integrity footer: a marker byte
// that can never begin a record (0xFF is not a valid Kind), the IEEE
// CRC32 of every record byte between header and footer, and the record
// count. The footer turns silent tail truncation — a crash mid-write, a
// partial copy — into a typed ErrCorrupt instead of a short-but-clean
// replay. Version 1 streams (no footer) are still read.
const (
	magic = "BCET"
	// FormatVersion is the on-disk trace container version, exported so
	// binaries can stamp it on their build-info metrics.
	FormatVersion = 2
	// footerMarker begins the v2 integrity footer. It is outside the
	// valid Kind range, so a reader can never confuse it with a record.
	footerMarker = 0xFF
)

const (
	recTaken   = 1 << 0 // branch direction
	recHasAddr = 1 << 1 // memory address present
	recHasRegs = 1 << 2 // register operands present
)

// ErrBadMagic is returned when a reader is pointed at a non-trace file.
var ErrBadMagic = errors.New("trace: bad magic (not a BCET trace)")

// ErrBadVersion is returned for traces written by an unknown format
// version.
var ErrBadVersion = errors.New("trace: unsupported format version")

// ErrCorrupt marks a structurally broken trace: an invalid record, a
// CRC footer mismatch, a truncated stream, or trailing garbage.
// Errors carrying it are wrapped with the failing record index, the
// last decoded PC and the byte offset, so a bad trace is debuggable
// without a hex dump (errors.Is(err, ErrCorrupt) still matches).
var ErrCorrupt = errors.New("corrupt trace")

// Writer encodes uops to a compact binary stream. Call Close when the
// trace is complete: it writes the version-2 integrity footer and
// flushes. A stream that is flushed but never closed has no footer and
// reads back as truncated.
type Writer struct {
	w      *bufio.Writer
	lastPC uint64
	n      uint64
	buf    []byte
	crc    uint32
	hdrOK  bool
	closed bool
}

// NewWriter returns a Writer emitting to w. The header is written on
// the first record (or on Flush/Close for an empty trace).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), buf: make([]byte, 0, 64)}
}

func (tw *Writer) header() error {
	if tw.hdrOK {
		return nil
	}
	tw.hdrOK = true
	if _, err := tw.w.WriteString(magic); err != nil {
		return err
	}
	var h [4]byte
	binary.LittleEndian.PutUint16(h[0:2], FormatVersion)
	binary.LittleEndian.PutUint16(h[2:4], 0)
	_, err := tw.w.Write(h[:])
	return err
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// WriteUop appends one uop to the stream.
func (tw *Writer) WriteUop(u Uop) error {
	if tw.closed {
		return fmt.Errorf("trace: WriteUop after Close")
	}
	if !u.Kind.Valid() {
		return fmt.Errorf("trace: invalid kind %d", uint8(u.Kind))
	}
	if err := tw.header(); err != nil {
		return err
	}
	var flags uint8
	if u.Taken {
		flags |= recTaken
	}
	if u.Kind.IsMem() {
		flags |= recHasAddr
	}
	if u.Dst != NoReg || u.Src1 != NoReg || u.Src2 != NoReg {
		flags |= recHasRegs
	}
	b := tw.buf[:0]
	b = append(b, byte(u.Kind), flags)
	b = binary.AppendUvarint(b, zigzag(int64(u.PC)-int64(tw.lastPC)))
	tw.lastPC = u.PC
	if u.Kind.IsBranch() {
		b = binary.AppendUvarint(b, zigzag(int64(u.Target)-int64(u.PC)))
	}
	if flags&recHasAddr != 0 {
		b = binary.AppendUvarint(b, u.Addr)
	}
	if flags&recHasRegs != 0 {
		b = append(b, u.Dst, u.Src1, u.Src2)
	}
	tw.buf = b[:0]
	tw.n++
	tw.crc = crc32.Update(tw.crc, crc32.IEEETable, b)
	_, err := tw.w.Write(b)
	return err
}

// Count reports the number of uops written so far.
func (tw *Writer) Count() uint64 { return tw.n }

// Flush writes any buffered data (and the header, for an empty trace)
// without ending the stream. Use it for mid-stream durability; the
// trace is only complete after Close.
func (tw *Writer) Flush() error {
	if err := tw.header(); err != nil {
		return err
	}
	return tw.w.Flush()
}

// Close writes the integrity footer (marker, CRC32 of all record
// bytes, record count) and flushes. The Writer rejects further uops
// afterwards; Close is idempotent.
func (tw *Writer) Close() error {
	if tw.closed {
		return nil
	}
	if err := tw.header(); err != nil {
		return err
	}
	tw.closed = true
	b := tw.buf[:0]
	b = append(b, footerMarker)
	b = binary.LittleEndian.AppendUint32(b, tw.crc)
	b = binary.AppendUvarint(b, tw.n)
	tw.buf = b[:0]
	if _, err := tw.w.Write(b); err != nil {
		return err
	}
	return tw.w.Flush()
}

// Reader decodes a binary trace stream. It implements Source.
type Reader struct {
	r       *bufio.Reader
	lastPC  uint64
	err     error
	hdrOK   bool
	version uint16
	off     int64  // bytes consumed, including the header
	rec     uint64 // records fully decoded
	crc     uint32 // running CRC32 over record bytes (v2)
}

// NewReader returns a Reader over r. The header is validated lazily on
// the first read.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

func (tr *Reader) checkHeader() error {
	if tr.hdrOK {
		return nil
	}
	tr.hdrOK = true
	var h [8]byte
	if _, err := io.ReadFull(tr.r, h[:]); err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	tr.off += 8
	if string(h[0:4]) != magic {
		return ErrBadMagic
	}
	tr.version = binary.LittleEndian.Uint16(h[4:6])
	if tr.version != 1 && tr.version != FormatVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, tr.version)
	}
	return nil
}

// corrupt builds the sticky contextual corruption error: which record
// failed, the last successfully decoded PC, and the byte offset.
func (tr *Reader) corrupt(format string, args ...any) error {
	detail := fmt.Sprintf(format, args...)
	tr.err = fmt.Errorf("trace: record %d at pc %#x (byte offset %d): %w: %s",
		tr.rec, tr.lastPC, tr.off, ErrCorrupt, detail)
	return tr.err
}

// readByte is the single byte source for record decoding: it keeps the
// byte offset and the running CRC that the v2 footer verifies.
func (tr *Reader) readByte() (byte, error) {
	b, err := tr.r.ReadByte()
	if err != nil {
		return 0, err
	}
	tr.off++
	tr.crc = crc32.Update(tr.crc, crc32.IEEETable, []byte{b})
	return b, nil
}

// ReadByte implements io.ByteReader so binary.ReadUvarint decodes
// through the offset/CRC accounting.
func (tr *Reader) ReadByte() (byte, error) { return tr.readByte() }

func (tr *Reader) readUvarint() (uint64, error) {
	return binary.ReadUvarint(tr)
}

// readFooter consumes and verifies the v2 footer after its marker byte
// was read; crcBefore is the running CRC excluding the marker.
func (tr *Reader) readFooter(crcBefore uint32) error {
	var f [4]byte
	for i := range f {
		b, err := tr.readByte()
		if err != nil {
			return tr.corrupt("truncated integrity footer")
		}
		f[i] = b
	}
	want := binary.LittleEndian.Uint32(f[:])
	if want != crcBefore {
		return tr.corrupt("crc mismatch: footer %#08x, stream %#08x", want, crcBefore)
	}
	count, err := tr.readUvarint()
	if err != nil {
		return tr.corrupt("truncated integrity footer")
	}
	if count != tr.rec {
		return tr.corrupt("record count mismatch: footer says %d, stream has %d", count, tr.rec)
	}
	if _, err := tr.r.ReadByte(); err != io.EOF {
		tr.off++
		return tr.corrupt("trailing data after integrity footer")
	}
	tr.err = io.EOF
	return io.EOF
}

// ReadUop decodes the next uop. It returns io.EOF at a clean end of
// stream — for version-2 traces, only after a verified integrity
// footer; a version-2 stream that simply stops is reported corrupt.
func (tr *Reader) ReadUop() (Uop, error) {
	if tr.err != nil {
		return Uop{}, tr.err
	}
	if err := tr.checkHeader(); err != nil {
		tr.err = err
		return Uop{}, err
	}
	crcBefore := tr.crc
	kb, err := tr.readByte()
	if err != nil {
		if err == io.EOF {
			if tr.version >= 2 {
				return Uop{}, tr.corrupt("truncated: missing integrity footer")
			}
			tr.err = io.EOF
			return Uop{}, io.EOF
		}
		tr.err = err
		return Uop{}, err
	}
	if kb == footerMarker && tr.version >= 2 {
		return Uop{}, tr.readFooter(crcBefore)
	}
	var u Uop
	u.Kind = Kind(kb)
	if !u.Kind.Valid() {
		return Uop{}, tr.corrupt("invalid kind %d", kb)
	}
	flags, err := tr.readByte()
	if err != nil {
		return Uop{}, tr.corrupt("unexpected end of stream in record flags")
	}
	u.Taken = flags&recTaken != 0
	d, err := tr.readUvarint()
	if err != nil {
		return Uop{}, tr.corrupt("unexpected end of stream in pc delta")
	}
	u.PC = uint64(int64(tr.lastPC) + unzigzag(d))
	tr.lastPC = u.PC
	if u.Kind.IsBranch() {
		td, err := tr.readUvarint()
		if err != nil {
			return Uop{}, tr.corrupt("unexpected end of stream in branch target")
		}
		u.Target = uint64(int64(u.PC) + unzigzag(td))
	}
	u.Dst, u.Src1, u.Src2 = NoReg, NoReg, NoReg
	if flags&recHasAddr != 0 {
		if u.Addr, err = tr.readUvarint(); err != nil {
			return Uop{}, tr.corrupt("unexpected end of stream in address")
		}
	}
	if flags&recHasRegs != 0 {
		var regs [3]byte
		for i := range regs {
			b, err := tr.readByte()
			if err != nil {
				return Uop{}, tr.corrupt("unexpected end of stream in registers")
			}
			regs[i] = b
		}
		u.Dst, u.Src1, u.Src2 = regs[0], regs[1], regs[2]
	}
	tr.rec++
	return u, nil
}

// Records reports the number of records fully decoded so far.
func (tr *Reader) Records() uint64 { return tr.rec }

// Offset reports the number of stream bytes consumed so far.
func (tr *Reader) Offset() int64 { return tr.off }

// Next implements Source. A decode error terminates the stream; check
// Err afterwards.
func (tr *Reader) Next() (Uop, bool) {
	u, err := tr.ReadUop()
	if err != nil {
		return Uop{}, false
	}
	return u, true
}

// Err returns the terminal error, if any, excluding a clean io.EOF.
func (tr *Reader) Err() error {
	if tr.err == io.EOF {
		return nil
	}
	return tr.err
}
