package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randomUop(r *rand.Rand) Uop {
	k := Kind(r.Intn(int(numKinds)))
	u := Uop{
		PC:   r.Uint64() >> 16,
		Kind: k,
		Dst:  NoReg, Src1: NoReg, Src2: NoReg,
	}
	if k.IsBranch() {
		u.Target = r.Uint64() >> 16
		u.Taken = r.Intn(2) == 0 || !k.IsConditional()
		if !k.IsConditional() {
			u.Taken = true
		}
	}
	if k.IsMem() {
		u.Addr = r.Uint64() >> 8
	}
	if r.Intn(2) == 0 {
		u.Dst = uint8(r.Intn(NumRegs))
		u.Src1 = uint8(r.Intn(NumRegs))
		u.Src2 = uint8(r.Intn(NumRegs))
	}
	return u
}

func roundTrip(t *testing.T, uops []Uop) []Uop {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, u := range uops {
		if err := w.WriteUop(u); err != nil {
			t.Fatalf("WriteUop: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if w.Count() != uint64(len(uops)) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(uops))
	}
	r := NewReader(&buf)
	var got []Uop
	for {
		u, err := r.ReadUop()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadUop: %v", err)
		}
		got = append(got, u)
	}
	if r.Err() != nil {
		t.Fatalf("Err() = %v", r.Err())
	}
	return got
}

func TestCodecRoundTripFixed(t *testing.T) {
	uops := []Uop{
		{PC: 0x400000, Kind: ALU, Dst: 1, Src1: 2, Src2: 3},
		{PC: 0x400004, Kind: Load, Addr: 0xdeadbeef, Dst: 4, Src1: 1, Src2: NoReg},
		{PC: 0x400008, Kind: CondBranch, Taken: true, Target: 0x400100, Dst: NoReg, Src1: 4, Src2: NoReg},
		{PC: 0x400100, Kind: Store, Addr: 0x10, Dst: NoReg, Src1: 4, Src2: 1},
		{PC: 0x400104, Kind: Ret, Taken: true, Target: 0x400010, Dst: NoReg, Src1: NoReg, Src2: NoReg},
		{PC: 0x400010, Kind: Nop, Dst: NoReg, Src1: NoReg, Src2: NoReg},
	}
	got := roundTrip(t, uops)
	if len(got) != len(uops) {
		t.Fatalf("decoded %d uops, want %d", len(got), len(uops))
	}
	for i := range uops {
		if got[i] != uops[i] {
			t.Errorf("uop %d: got %+v, want %+v", i, got[i], uops[i])
		}
	}
}

func TestCodecRoundTripEmpty(t *testing.T) {
	if got := roundTrip(t, nil); len(got) != 0 {
		t.Fatalf("decoded %d uops from empty trace", len(got))
	}
}

// Property: encode/decode is the identity on arbitrary uop sequences.
func TestCodecRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		uops := make([]Uop, int(n)%200)
		for i := range uops {
			uops[i] = randomUop(r)
		}
		got := roundTrip(t, uops)
		if len(got) != len(uops) {
			return false
		}
		for i := range uops {
			if got[i] != uops[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOPE0000 garbage")))
	_, err := r.ReadUop()
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	// Subsequent reads keep failing.
	if _, err := r.ReadUop(); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("second err = %v, want ErrBadMagic", err)
	}
	if r.Err() == nil {
		t.Fatal("Err() = nil after bad magic")
	}
}

func TestReaderBadVersion(t *testing.T) {
	buf := []byte("BCET\xFF\x00\x00\x00")
	r := NewReader(bytes.NewReader(buf))
	if _, err := r.ReadUop(); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		if err := w.WriteUop(Uop{PC: uint64(i) * 4, Kind: Load, Addr: 0x1000,
			Dst: NoReg, Src1: NoReg, Src2: NoReg}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut past the 6-byte footer and into the record stream.
	r := NewReader(bytes.NewReader(full[:len(full)-10]))
	n := 0
	for {
		if _, err := r.ReadUop(); err != nil {
			break
		}
		n++
	}
	if r.Err() == nil {
		t.Fatal("truncated trace produced clean EOF")
	}
	if n >= 10 {
		t.Fatalf("decoded %d uops from truncated trace", n)
	}
}

func TestReaderTruncatedHeader(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("BC")))
	if _, err := r.ReadUop(); err == nil {
		t.Fatal("expected error for truncated header")
	}
}

func TestWriterRejectsInvalidKind(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.WriteUop(Uop{Kind: Kind(99)}); err == nil {
		t.Fatal("expected error for invalid kind")
	}
}

func TestNextStopsOnError(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("garbage!")))
	if _, ok := r.Next(); ok {
		t.Fatal("Next returned ok on garbage")
	}
}

func BenchmarkCodecWrite(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	uops := make([]Uop, 4096)
	for i := range uops {
		uops[i] = randomUop(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	w := NewWriter(io.Discard)
	for i := 0; i < b.N; i++ {
		_ = w.WriteUop(uops[i&4095])
	}
}

// Robustness: arbitrary byte streams must never panic the reader —
// they either decode or produce an error.
func TestReaderArbitraryBytesNoPanic(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(512)
		buf := make([]byte, n)
		r.Read(buf)
		// Half the trials get a valid header so the record decoder is
		// actually exercised.
		if trial%2 == 0 && n >= 8 {
			copy(buf, "BCET")
			buf[4], buf[5] = 1, 0
			buf[6], buf[7] = 0, 0
		}
		tr := NewReader(bytes.NewReader(buf))
		for i := 0; i < 1000; i++ {
			if _, err := tr.ReadUop(); err != nil {
				break
			}
		}
	}
}

// encodeUops returns a complete (Closed, footered) v2 stream.
func encodeUops(t *testing.T, uops []Uop) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, u := range uops {
		if err := w.WriteUop(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

var testUops = []Uop{
	{PC: 0x401000, Kind: ALU, Dst: 1, Src1: 2, Src2: NoReg},
	{PC: 0x401004, Kind: Load, Addr: 0x2000, Dst: 3, Src1: 1, Src2: NoReg},
	{PC: 0x401008, Kind: CondBranch, Taken: true, Target: 0x401a2c,
		Dst: NoReg, Src1: 3, Src2: NoReg},
	{PC: 0x401a2c, Kind: Store, Addr: 0x2008, Dst: NoReg, Src1: 3, Src2: 1},
}

// A version-1 stream (no footer) must still read back cleanly: the
// version-2 footer is additive, not a migration.
func TestReaderAcceptsVersion1(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, u := range testUops {
		if err := w.WriteUop(u); err != nil {
			t.Fatal(err)
		}
	}
	// Flush, not Close: no footer. Rewriting the version field yields
	// exactly what a v1 writer produced (records are unchanged).
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4], raw[5] = 1, 0
	r := NewReader(bytes.NewReader(raw))
	for i, want := range testUops {
		got, err := r.ReadUop()
		if err != nil || got != want {
			t.Fatalf("v1 uop %d: got %+v err %v", i, got, err)
		}
	}
	if _, err := r.ReadUop(); err != io.EOF {
		t.Fatalf("v1 end: err = %v, want io.EOF", err)
	}
	if r.Err() != nil {
		t.Fatalf("v1 Err() = %v", r.Err())
	}
}

// A version-2 stream that ends without its footer is truncated, not a
// clean EOF — the exact failure a crash mid-write produces.
func TestReaderMissingFooter(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, u := range testUops {
		if err := w.WriteUop(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil { // no Close
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(buf.Bytes()))
	for range testUops {
		if _, err := r.ReadUop(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.ReadUop(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing footer: err = %v, want ErrCorrupt", err)
	}
}

// Any record byte flipped between header and footer must fail the CRC
// (when it doesn't already fail record decoding), with the record
// index and PC context in the message.
func TestReaderDetectsBitFlips(t *testing.T) {
	whole := encodeUops(t, testUops)
	flips := 0
	for off := 8; off < len(whole); off++ {
		raw := bytes.Clone(whole)
		raw[off] ^= 0x10
		r := NewReader(bytes.NewReader(raw))
		var err error
		for err == nil {
			_, err = r.ReadUop()
		}
		if err == io.EOF {
			t.Fatalf("flip at offset %d read back clean", off)
		}
		if errors.Is(err, ErrCorrupt) {
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("no flip produced ErrCorrupt")
	}
}

func TestReaderTrailingData(t *testing.T) {
	raw := append(encodeUops(t, testUops), 0xAB)
	r := NewReader(bytes.NewReader(raw))
	var err error
	for err == nil {
		_, err = r.ReadUop()
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing data: err = %v, want ErrCorrupt", err)
	}
}

// Corruption errors must carry the record index, the last decoded PC
// and the byte offset — debuggability without a hex dump.
func TestCorruptErrorContext(t *testing.T) {
	whole := encodeUops(t, testUops)
	// Cut the stream one byte into record 3, so decoding dies there
	// with the last fully decoded PC (record 2's 0x401008) as context.
	r := NewReader(bytes.NewReader(whole))
	for i := 0; i < 3; i++ {
		if _, err := r.ReadUop(); err != nil {
			t.Fatal(err)
		}
	}
	cut := r.Offset()
	r = NewReader(bytes.NewReader(whole[:cut+1]))
	var err error
	for err == nil {
		_, err = r.ReadUop()
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	msg := err.Error()
	for _, want := range []string{"record 3", "pc 0x401008", "byte offset"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
	// Sticky.
	if _, err2 := r.ReadUop(); !errors.Is(err2, ErrCorrupt) {
		t.Fatalf("corruption error not sticky: %v", err2)
	}
}

func TestWriterAfterClose(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := w.WriteUop(Uop{Kind: Nop, Dst: NoReg, Src1: NoReg, Src2: NoReg}); err == nil {
		t.Fatal("WriteUop after Close succeeded")
	}
}

func TestReaderCountersAdvance(t *testing.T) {
	r := NewReader(bytes.NewReader(encodeUops(t, testUops)))
	if r.Records() != 0 || r.Offset() != 0 {
		t.Fatalf("fresh reader: records %d offset %d", r.Records(), r.Offset())
	}
	for range testUops {
		if _, err := r.ReadUop(); err != nil {
			t.Fatal(err)
		}
	}
	if r.Records() != uint64(len(testUops)) {
		t.Fatalf("Records = %d, want %d", r.Records(), len(testUops))
	}
	if r.Offset() <= 8 {
		t.Fatalf("Offset = %d, want > header", r.Offset())
	}
}

// Round-trip stability under interleaved writers: two traces written
// independently decode independently (no shared state).
func TestWritersIndependent(t *testing.T) {
	var bufA, bufB bytes.Buffer
	wa, wb := NewWriter(&bufA), NewWriter(&bufB)
	r := rand.New(rand.NewSource(3))
	var uopsA, uopsB []Uop
	for i := 0; i < 500; i++ {
		ua, ub := randomUop(r), randomUop(r)
		uopsA = append(uopsA, ua)
		uopsB = append(uopsB, ub)
		if err := wa.WriteUop(ua); err != nil {
			t.Fatal(err)
		}
		if err := wb.WriteUop(ub); err != nil {
			t.Fatal(err)
		}
	}
	if err := wa.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string]struct {
		buf  *bytes.Buffer
		want []Uop
	}{"A": {&bufA, uopsA}, "B": {&bufB, uopsB}} {
		tr := NewReader(bytes.NewReader(pair.buf.Bytes()))
		for i, want := range pair.want {
			got, err := tr.ReadUop()
			if err != nil || got != want {
				t.Fatalf("trace %s uop %d: got %+v err %v", name, i, got, err)
			}
		}
	}
}
