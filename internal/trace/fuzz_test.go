package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"testing"
)

// uopFromChunk builds one syntactically valid Uop from a 27-byte fuzz
// chunk, covering every kind and the full field ranges (including the
// PC extremes that stress zig-zag delta encoding).
func uopFromChunk(c []byte) Uop {
	u := Uop{
		PC:     binary.LittleEndian.Uint64(c[0:8]),
		Target: binary.LittleEndian.Uint64(c[8:16]),
		Addr:   binary.LittleEndian.Uint64(c[16:24]),
		Kind:   Kind(c[24] % uint8(numKinds)),
		Taken:  c[25]&1 != 0,
	}
	u.Dst, u.Src1, u.Src2 = NoReg, NoReg, NoReg
	if c[25]&2 != 0 {
		u.Dst = c[26] % NumRegs
		u.Src1 = c[26] / 2 % NumRegs
		u.Src2 = NoReg
	}
	return u
}

// expected normalizes a written uop to what the codec preserves: the
// target travels only with branches, the address only with memory
// uops (everything else reads back as zero).
func expected(u Uop) Uop {
	if !u.Kind.IsBranch() {
		u.Target = 0
	}
	if !u.Kind.IsMem() {
		u.Addr = 0
	}
	return u
}

// FuzzCodecRoundTrip checks that any sequence of valid uops survives a
// write/read cycle bit-exactly — in particular the zig-zag varint PC
// deltas, which must round-trip even for deltas of math.MinInt64
// (adjacent PCs 2^63 apart).
func FuzzCodecRoundTrip(f *testing.F) {
	chunk := func(pc, target, addr uint64, kind, flags, regs byte) []byte {
		var c [27]byte
		binary.LittleEndian.PutUint64(c[0:8], pc)
		binary.LittleEndian.PutUint64(c[8:16], target)
		binary.LittleEndian.PutUint64(c[16:24], addr)
		c[24], c[25], c[26] = kind, flags, regs
		return c[:]
	}
	// Seeds that force the encoder's edge cases: PC deltas of
	// ±(2^63), maximal addresses, every field class present.
	f.Add(append(chunk(0, 0, 0, byte(CondBranch), 1, 0),
		chunk(1<<63, 1<<63, 0, byte(CondBranch), 0, 0)...)) // delta = MinInt64
	f.Add(append(chunk(math.MaxUint64, 0, 0, byte(Jump), 1, 0),
		chunk(0, math.MaxUint64, 0, byte(Ret), 1, 0)...))
	f.Add(chunk(0x400000, 0, math.MaxUint64, byte(Load), 2, 200))
	f.Add(chunk(12, 0, 34, byte(Store), 3, 7))
	f.Add(chunk(0, 0, 0, byte(Nop), 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		var uops []Uop
		for len(data) >= 27 {
			uops = append(uops, uopFromChunk(data[:27]))
			data = data[27:]
		}

		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, u := range uops {
			if err := w.WriteUop(u); err != nil {
				t.Fatalf("WriteUop(%v): %v", u, err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if w.Count() != uint64(len(uops)) {
			t.Fatalf("Count = %d, want %d", w.Count(), len(uops))
		}

		r := NewReader(&buf)
		for i, u := range uops {
			got, err := r.ReadUop()
			if err != nil {
				t.Fatalf("ReadUop #%d: %v", i, err)
			}
			if want := expected(u); got != want {
				t.Fatalf("uop #%d round-trip mismatch:\n got %+v\nwant %+v", i, got, want)
			}
		}
		if _, err := r.ReadUop(); err != io.EOF {
			t.Fatalf("after %d uops: err = %v, want io.EOF", len(uops), err)
		}
		if r.Err() != nil {
			t.Fatalf("Err() after clean EOF = %v", r.Err())
		}
	})
}

// FuzzReaderRobustness feeds arbitrary bytes — corrupted headers,
// truncated streams, garbage records — to the Reader and requires a
// clean, sticky error: never a panic, never an infinite loop, and the
// same terminal error on every subsequent call.
func FuzzReaderRobustness(f *testing.F) {
	valid := func(uops ...Uop) []byte {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, u := range uops {
			if err := w.WriteUop(u); err != nil {
				f.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	whole := valid(
		Uop{PC: 0x1000, Kind: ALU, Dst: 1, Src1: 2, Src2: NoReg},
		Uop{PC: 0x1004, Kind: CondBranch, Target: 0x2000, Taken: true},
		Uop{PC: 0x2000, Kind: Load, Addr: 0xdead},
	)
	f.Add(whole)                          // clean stream
	f.Add(whole[:len(whole)-2])           // truncated inside the footer
	f.Add(whole[:len(whole)-7])           // truncated before the footer
	f.Add(whole[:6])                      // truncated header
	f.Add([]byte{})                       // empty input
	f.Add([]byte("BCET\xff\xff\x00\x00")) // bad version
	f.Add([]byte("NOPE\x01\x00\x00\x00")) // bad magic
	corrupt := bytes.Clone(whole)
	corrupt[8] = 0xEE // invalid kind in the first record
	f.Add(corrupt)
	crcFlip := bytes.Clone(whole)
	crcFlip[10] ^= 0x40 // record payload bit flip: CRC footer must catch it
	f.Add(crcFlip)
	footerFlip := bytes.Clone(whole)
	footerFlip[len(footerFlip)-3] ^= 0x01 // corrupt the footer itself
	f.Add(footerFlip)
	f.Add(append(bytes.Clone(whole), 0x00)) // trailing data after footer
	v1 := bytes.Clone(whole)
	v1[4], v1[5] = 1, 0 // v1 header: records valid, footer bytes are garbage records
	f.Add(v1)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		var terminal error
		for i := 0; ; i++ {
			_, err := r.ReadUop()
			if err != nil {
				terminal = err
				break
			}
			if i > len(data) {
				t.Fatalf("decoded more records than input bytes (%d); reader not terminating", i)
			}
		}
		// The error must be sticky.
		if _, err := r.ReadUop(); !errors.Is(err, terminal) {
			t.Fatalf("error not sticky: first %v, then %v", terminal, err)
		}
		// Clean EOF is only legal at a record boundary with a valid
		// header; anything else must surface as a real error.
		if terminal == io.EOF && len(data) < 8 {
			t.Fatalf("clean EOF on %d-byte input (shorter than the header)", len(data))
		}
		if r.Err() != nil && r.Err() == io.EOF {
			t.Fatal("Err() leaked io.EOF")
		}
	})
}
