// Package trace defines the micro-operation (uop) record that flows
// through every component of the simulator, plus a compact binary codec
// so traces can be stored, replayed and inspected offline.
//
// The simulator is uop-based, mirroring the paper's IA32 uop-level
// methodology: every metric in the paper (mispredicts per 1000 uops,
// reduction in uops executed, …) is denominated in uops, so the trace
// record is the natural unit of work.
package trace

import "fmt"

// Kind classifies a uop by the functional unit class and semantics it
// needs. The simulator's schedulers, latency table and statistics all
// key off Kind.
type Kind uint8

// Uop kinds. Branch kinds are grouped at the end so IsBranch can use a
// range test.
const (
	// Nop does nothing but occupies a slot (used for padding and
	// pipeline bubbles in synthesized wrong-path code).
	Nop Kind = iota
	// ALU is a single-cycle integer operation.
	ALU
	// Mul is a pipelined integer multiply.
	Mul
	// Div is an unpipelined integer divide.
	Div
	// FP is a generic floating-point operation.
	FP
	// FPDiv is a long-latency floating-point divide.
	FPDiv
	// Load reads memory through the data-cache hierarchy.
	Load
	// Store writes memory; retires through the store buffer.
	Store
	// CondBranch is a conditional branch: the only kind that is
	// predicted, confidence-estimated, gated and possibly reversed.
	CondBranch
	// Jump is an unconditional direct jump.
	Jump
	// Call is a direct call (unconditional, pushes a return address).
	Call
	// Ret is a return (indirect, popped from the return stack).
	Ret

	numKinds
)

var kindNames = [numKinds]string{
	Nop: "nop", ALU: "alu", Mul: "mul", Div: "div",
	FP: "fp", FPDiv: "fpdiv", Load: "load", Store: "store",
	CondBranch: "br.cond", Jump: "jmp", Call: "call", Ret: "ret",
}

// String returns the mnemonic for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return k < numKinds }

// IsBranch reports whether the kind is any control-flow transfer.
func (k Kind) IsBranch() bool { return k >= CondBranch && k <= Ret }

// IsConditional reports whether the kind is a conditional branch, the
// only kind subject to prediction and confidence estimation.
func (k Kind) IsConditional() bool { return k == CondBranch }

// IsMem reports whether the uop accesses data memory.
func (k Kind) IsMem() bool { return k == Load || k == Store }

// IsFP reports whether the uop executes on the floating-point unit.
func (k Kind) IsFP() bool { return k == FP || k == FPDiv }

// NoReg marks an unused register operand slot in a Uop.
const NoReg uint8 = 0xFF

// NumRegs is the size of the architectural register file the generators
// draw operands from. Register indices are in [0, NumRegs).
const NumRegs = 64

// Uop is one micro-operation. The zero value is a valid Nop.
//
// Register operands use indices in [0, NumRegs) or NoReg when a slot is
// unused. Branch uops carry their resolved direction (Taken) and target;
// memory uops carry their effective address. The record describes what
// the program *does* — prediction, confidence and timing are the
// simulator's business.
type Uop struct {
	// PC is the address of the uop. Static branches keep a stable PC
	// across dynamic instances, which is what prediction tables index.
	PC uint64
	// Target is the branch target address (branches only).
	Target uint64
	// Addr is the effective data address (loads and stores only).
	Addr uint64
	// Dst is the destination register, or NoReg.
	Dst uint8
	// Src1 and Src2 are source registers, or NoReg.
	Src1, Src2 uint8
	// Kind classifies the uop.
	Kind Kind
	// Taken is the resolved direction of a conditional branch; it is
	// true for unconditional transfers.
	Taken bool
}

// IsBranch reports whether the uop is any control transfer.
func (u Uop) IsBranch() bool { return u.Kind.IsBranch() }

// IsConditional reports whether the uop is a conditional branch.
func (u Uop) IsConditional() bool { return u.Kind.IsConditional() }

// String formats the uop for debugging and trace dumps.
func (u Uop) String() string {
	switch {
	case u.Kind.IsConditional():
		dir := "N"
		if u.Taken {
			dir = "T"
		}
		return fmt.Sprintf("%#x: %s %s -> %#x", u.PC, u.Kind, dir, u.Target)
	case u.Kind.IsBranch():
		return fmt.Sprintf("%#x: %s -> %#x", u.PC, u.Kind, u.Target)
	case u.Kind.IsMem():
		return fmt.Sprintf("%#x: %s [%#x] d%d s%d,%d", u.PC, u.Kind, u.Addr, u.Dst, u.Src1, u.Src2)
	default:
		return fmt.Sprintf("%#x: %s d%d s%d,%d", u.PC, u.Kind, u.Dst, u.Src1, u.Src2)
	}
}

// Source produces a stream of uops. Implementations include the
// synthetic workload generators and file-backed trace readers.
//
// Next returns the next uop; ok is false when the stream is exhausted
// (generators are infinite and always return ok=true).
type Source interface {
	Next() (u Uop, ok bool)
}

// SliceSource replays a fixed slice of uops; useful in tests.
type SliceSource struct {
	uops []Uop
	pos  int
}

// NewSliceSource returns a Source that yields the given uops in order.
func NewSliceSource(uops []Uop) *SliceSource { return &SliceSource{uops: uops} }

// Next implements Source.
func (s *SliceSource) Next() (Uop, bool) {
	if s.pos >= len(s.uops) {
		return Uop{}, false
	}
	u := s.uops[s.pos]
	s.pos++
	return u, true
}

// Reset rewinds the source to the beginning of the slice.
func (s *SliceSource) Reset() { s.pos = 0 }

// Take drains up to n uops from a source into a fresh slice.
func Take(src Source, n int) []Uop {
	out := make([]Uop, 0, n)
	for len(out) < n {
		u, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, u)
	}
	return out
}
