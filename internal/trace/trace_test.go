package trace

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Nop: "nop", ALU: "alu", Mul: "mul", Div: "div", FP: "fp",
		FPDiv: "fpdiv", Load: "load", Store: "store",
		CondBranch: "br.cond", Jump: "jmp", Call: "call", Ret: "ret",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("unknown kind string = %q", got)
	}
}

func TestKindPredicates(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		wantBranch := k == CondBranch || k == Jump || k == Call || k == Ret
		if got := k.IsBranch(); got != wantBranch {
			t.Errorf("%v.IsBranch() = %v, want %v", k, got, wantBranch)
		}
		if got := k.IsConditional(); got != (k == CondBranch) {
			t.Errorf("%v.IsConditional() = %v", k, got)
		}
		if got := k.IsMem(); got != (k == Load || k == Store) {
			t.Errorf("%v.IsMem() = %v", k, got)
		}
		if got := k.IsFP(); got != (k == FP || k == FPDiv) {
			t.Errorf("%v.IsFP() = %v", k, got)
		}
		if !k.Valid() {
			t.Errorf("%v.Valid() = false", k)
		}
	}
	if Kind(numKinds).Valid() {
		t.Error("Kind(numKinds).Valid() = true")
	}
}

func TestUopString(t *testing.T) {
	br := Uop{PC: 0x1000, Kind: CondBranch, Taken: true, Target: 0x2000}
	if s := br.String(); !strings.Contains(s, "br.cond") || !strings.Contains(s, "T") {
		t.Errorf("branch string %q missing pieces", s)
	}
	nt := Uop{PC: 0x1000, Kind: CondBranch, Taken: false, Target: 0x2000}
	if s := nt.String(); !strings.Contains(s, " N ") {
		t.Errorf("not-taken branch string %q missing N", s)
	}
	ld := Uop{PC: 0x40, Kind: Load, Addr: 0xbeef, Dst: 3, Src1: 1, Src2: NoReg}
	if s := ld.String(); !strings.Contains(s, "load") || !strings.Contains(s, "0xbeef") {
		t.Errorf("load string %q missing pieces", s)
	}
	jm := Uop{PC: 0x40, Kind: Jump, Target: 0x80, Taken: true}
	if s := jm.String(); !strings.Contains(s, "jmp") {
		t.Errorf("jump string %q", s)
	}
	al := Uop{PC: 0x44, Kind: ALU, Dst: 1, Src1: 2, Src2: 3}
	if s := al.String(); !strings.Contains(s, "alu") {
		t.Errorf("alu string %q", s)
	}
}

func TestSliceSource(t *testing.T) {
	uops := []Uop{
		{PC: 1, Kind: ALU},
		{PC: 2, Kind: Load, Addr: 100},
		{PC: 3, Kind: CondBranch, Taken: true, Target: 10},
	}
	src := NewSliceSource(uops)
	for i, want := range uops {
		got, ok := src.Next()
		if !ok {
			t.Fatalf("Next() exhausted at %d", i)
		}
		if got != want {
			t.Errorf("uop %d = %+v, want %+v", i, got, want)
		}
	}
	if _, ok := src.Next(); ok {
		t.Error("Next() after end returned ok")
	}
	src.Reset()
	if u, ok := src.Next(); !ok || u.PC != 1 {
		t.Errorf("after Reset, got %+v ok=%v", u, ok)
	}
}

func TestTake(t *testing.T) {
	uops := []Uop{{PC: 1}, {PC: 2}, {PC: 3}}
	src := NewSliceSource(uops)
	got := Take(src, 2)
	if len(got) != 2 || got[0].PC != 1 || got[1].PC != 2 {
		t.Errorf("Take(2) = %v", got)
	}
	got = Take(src, 10)
	if len(got) != 1 || got[0].PC != 3 {
		t.Errorf("Take(10) after partial drain = %v", got)
	}
}
