// Package workload synthesizes the 12 SPECint 2000 benchmark traces
// the paper evaluates on (Table 2). Real LIT traces are proprietary,
// so each benchmark is modeled as a synthetic program: a control-flow
// graph of basic blocks whose conditional branches draw their outcomes
// from per-branch behavior models, with per-benchmark uop mixes,
// register-dependence structure and memory-address streams. The
// behavior mixes are calibrated so the baseline hybrid predictor
// reproduces each benchmark's mispredicts-per-1000-uops from Table 2.
//
// See DESIGN.md §1 for why this substitution preserves what the
// paper's experiments exercise.
package workload

import (
	"fmt"
	"math/rand"
)

// BranchState is the per-static-branch mutable state a Behavior may
// use (loop trip counters, pattern positions, mode flags).
type BranchState struct {
	Counter int
	Pos     int
}

// Env is the dynamic context a behavior may consult: the global
// outcome history (bit 0 = most recent conditional branch outcome,
// 1 = taken — the same information a hardware history register holds)
// and the program phase (a benchmark-global mode bit that toggles
// slowly, modeling program phase behavior; see Profile.PhaseLen).
type Env struct {
	Ghist uint64
	Phase bool
}

// Behavior decides the outcome of one dynamic instance of a static
// branch.
type Behavior interface {
	// Outcome returns taken/not-taken for the next dynamic instance.
	Outcome(st *BranchState, env Env, rng *rand.Rand) bool
	// Kind names the behavior class for workload inspection tools.
	Kind() string
}

// Biased takes one direction with fixed probability; the bread and
// butter of real branch populations (error checks, guard clauses).
type Biased struct {
	// PTaken is the probability of taken on each instance.
	PTaken float64
}

// Outcome implements Behavior.
func (b Biased) Outcome(st *BranchState, env Env, rng *rand.Rand) bool {
	return rng.Float64() < b.PTaken
}

// Kind implements Behavior.
func (b Biased) Kind() string { return fmt.Sprintf("biased(%.2f)", b.PTaken) }

// Loop models a backward loop branch: taken Period-1 consecutive
// times, then not taken once (loop exit).
type Loop struct {
	// Period is the trip count; must be >= 2.
	Period int
}

// Outcome implements Behavior.
func (l Loop) Outcome(st *BranchState, env Env, rng *rand.Rand) bool {
	st.Counter++
	if st.Counter >= l.Period {
		st.Counter = 0
		return false
	}
	return true
}

// Kind implements Behavior.
func (l Loop) Kind() string { return fmt.Sprintf("loop(%d)", l.Period) }

// Pattern repeats a fixed local outcome sequence (e.g. T,T,N,T),
// modeling data-structure traversals with periodic structure. Local
// or global-history predictors learn it once the period is in reach.
type Pattern struct {
	Seq []bool
}

// Outcome implements Behavior.
func (p Pattern) Outcome(st *BranchState, env Env, rng *rand.Rand) bool {
	out := p.Seq[st.Pos]
	st.Pos = (st.Pos + 1) % len(p.Seq)
	return out
}

// Kind implements Behavior.
func (p Pattern) Kind() string { return fmt.Sprintf("pattern(%d)", len(p.Seq)) }

// GlobalCorr computes the outcome as a (possibly noisy) linear
// function of selected global-history bits: taken iff
// Σ sign_i·h[Bits[i]] > 0, with ties broken toward taken, then flipped
// with probability Noise. Bits within the baseline predictor's
// history reach (< 16) make the branch learnable by gshare; deeper
// bits leave the predictor struggling while the 32-bit-history
// confidence perceptron can still see the correlation.
type GlobalCorr struct {
	Bits  []int
	Signs []int // ±1 per bit; nil means all +1
	Noise float64
}

// Outcome implements Behavior.
func (g GlobalCorr) Outcome(st *BranchState, env Env, rng *rand.Rand) bool {
	sum := 0
	for i, b := range g.Bits {
		v := -1
		if env.Ghist>>uint(b)&1 == 1 {
			v = 1
		}
		if g.Signs != nil {
			v *= g.Signs[i]
		}
		sum += v
	}
	out := sum >= 0
	if g.Noise > 0 && rng.Float64() < g.Noise {
		out = !out
	}
	return out
}

// Kind implements Behavior.
func (g GlobalCorr) Kind() string { return fmt.Sprintf("gcorr(%v,%.2f)", g.Bits, g.Noise) }

// ContextBiased is the construction that gives confidence estimators
// something to learn (DESIGN.md §1): the branch follows a strong
// majority bias except in a *rare minority context* — a conjunction of
// global-history bits placed (partly) beyond the baseline predictor's
// reach — where it swings the other way. The predictor saturates on
// the majority direction, so its mispredictions concentrate in the
// minority context; a conjunction of history bits is linearly
// separable, so the 32-bit-history confidence perceptron can learn to
// flag exactly those instances while a 16-bit-history gshare cannot
// see the deciding bits.
type ContextBiased struct {
	// Bits are the deciding global-history bit positions (use >= 16
	// to exceed the baseline gshare's reach).
	Bits []int
	// Want are the per-bit values defining the minority context: the
	// context holds when every Bits[i] equals Want[i].
	Want []bool
	// PMajor and PMinor are the taken probabilities outside and inside
	// the minority context.
	PMajor, PMinor float64
}

// Outcome implements Behavior.
func (c ContextBiased) Outcome(st *BranchState, env Env, rng *rand.Rand) bool {
	minority := true
	for i, b := range c.Bits {
		bit := env.Ghist>>uint(b)&1 == 1
		if bit != c.Want[i] {
			minority = false
			break
		}
	}
	p := c.PMajor
	if minority {
		p = c.PMinor
	}
	return rng.Float64() < p
}

// Kind implements Behavior.
func (c ContextBiased) Kind() string {
	return fmt.Sprintf("ctxbias(h%v=%v:%.2f/%.2f)", c.Bits, c.Want, c.PMajor, c.PMinor)
}

// PhaseBiased ties the branch's bias to the benchmark's global
// program phase: taken with probability P1 in phase 1 and P0 in
// phase 0. Because phases last hundreds of branches, mispredictions
// arrive in bursts — the clustering that gives resetting-counter
// estimators (JRS) their high coverage, and that a history-driven
// perceptron can detect from the phase-distorted recent outcome
// history.
type PhaseBiased struct {
	P1, P0 float64
}

// Outcome implements Behavior.
func (p PhaseBiased) Outcome(st *BranchState, env Env, rng *rand.Rand) bool {
	pr := p.P0
	if env.Phase {
		pr = p.P1
	}
	return rng.Float64() < pr
}

// Kind implements Behavior.
func (p PhaseBiased) Kind() string {
	return fmt.Sprintf("phase(%.2f/%.2f)", p.P1, p.P0)
}

// Random is a 50/50 data-dependent branch no predictor can learn;
// pure misprediction (and JRS coverage) fodder.
type Random struct{}

// Outcome implements Behavior.
func (Random) Outcome(st *BranchState, env Env, rng *rand.Rand) bool {
	return rng.Intn(2) == 0
}

// Kind implements Behavior.
func (Random) Kind() string { return "random" }

// BlendPart is one component of a Blend.
type BlendPart struct {
	// Weight is the probability mass of this component (normalized
	// over the blend).
	Weight float64
	// B is the component behavior; it must be stateless (no use of
	// BranchState), which all mix classes except Pattern satisfy.
	B Behavior
}

// Blend mixes several behaviors on one static branch: each dynamic
// instance draws its outcome from one component, chosen by weight.
// The generator synthesizes blends for branches so hot that no single
// class's dynamic budget could absorb them — real hot branches are
// rarely pure archetypes either.
type Blend struct {
	Parts []BlendPart
	total float64
}

// NewBlend returns a blend over the given parts. It panics on an
// empty or zero-weight part list.
func NewBlend(parts []BlendPart) *Blend {
	var total float64
	for _, p := range parts {
		total += p.Weight
	}
	if len(parts) == 0 || total <= 0 {
		panic("workload: empty blend")
	}
	return &Blend{Parts: parts, total: total}
}

// Outcome implements Behavior.
func (b *Blend) Outcome(st *BranchState, env Env, rng *rand.Rand) bool {
	pick := rng.Float64() * b.total
	for _, p := range b.Parts {
		pick -= p.Weight
		if pick < 0 {
			return p.B.Outcome(st, env, rng)
		}
	}
	return b.Parts[len(b.Parts)-1].B.Outcome(st, env, rng)
}

// Kind implements Behavior.
func (b *Blend) Kind() string { return fmt.Sprintf("blend(%d)", len(b.Parts)) }

// MixEntry weights a behavior class within a Profile's static-branch
// population. Make is called once per static branch assigned to the
// class, so each branch gets its own parameter draw (its own loop
// period, bias level, context bit…).
type MixEntry struct {
	// Weight is the target *dynamic* share of conditional branches
	// drawing from this entry (weights are normalized over the mix).
	Weight float64
	// Make builds one static branch's behavior.
	Make func(rng *rand.Rand) Behavior
	// Extreme marks strongly directional classes (Biased); the
	// generator places them on structurally directional branches so
	// the hotness probe can anticipate their paths.
	Extreme bool
	// Stateful marks classes whose behaviors use BranchState
	// (Pattern); they cannot participate in synthesized blends.
	Stateful bool
}
