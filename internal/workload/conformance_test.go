package workload

import (
	"math/rand"
	"strings"
	"testing"

	"bce/internal/trace"
)

// classShares measures each behavior class's share of dynamic
// conditional-branch execution (blends contribute to a "blend"
// bucket).
func classShares(t *testing.T, name string, uops int) map[string]float64 {
	t.Helper()
	g := New(mustProfile(t, name))
	kinds := g.BranchKinds()
	counts := map[string]int{}
	total := 0
	for i := 0; i < uops; i++ {
		u, _ := g.Next()
		if !u.Kind.IsConditional() {
			continue
		}
		k := kinds[u.PC]
		if j := strings.IndexByte(k, '('); j > 0 {
			k = k[:j]
		}
		counts[k]++
		total++
	}
	shares := map[string]float64{}
	for k, c := range counts {
		shares[k] = float64(c) / float64(total)
	}
	return shares
}

// The hotness-aware class allocation must hold each class's dynamic
// share near its configured weight — this is the property the whole
// calibration pipeline rests on. Loops are structural (LoopFrac) and
// blends absorb boundary mass, so the check allows generous but
// bounded slack.
func TestDynamicSharesTrackWeights(t *testing.T) {
	for _, name := range []string{"gzip", "mcf", "gcc", "twolf"} {
		prof := mustProfile(t, name)
		shares := classShares(t, name, 400_000)
		// Sum the mix weights (loops live outside the mix).
		var total float64
		for _, m := range prof.Mix {
			total += m.Weight
		}
		// The ctxbias class drives the confidence results; its dynamic
		// share must be within 3x of its weight either way (blends
		// blur the boundary, perfect equality is not expected).
		var ctxW float64
		// ctx weight is the CtxBiasMix entry; identify by generating
		// one behavior from each entry and checking its kind.
		for _, m := range prof.Mix {
			b := m.Make(newTestRng())
			if strings.HasPrefix(b.Kind(), "ctxbias") {
				ctxW += m.Weight / total
			}
		}
		got := shares["ctxbias"] + shares["blend"] // blends include ctx mass
		if ctxW > 0.001 && (got < ctxW/3 || got > ctxW*3+0.05) {
			t.Errorf("%s: ctxbias dynamic share %.3f vs weight %.3f (outside 3x)",
				name, got, ctxW)
		}
		// No class may silently vanish if its weight is meaningful.
		for _, m := range prof.Mix {
			b := m.Make(newTestRng())
			k := b.Kind()
			if j := strings.IndexByte(k, '('); j > 0 {
				k = k[:j]
			}
			w := m.Weight / total
			if w > 0.05 && shares[k]+shares["blend"] < 0.005 {
				t.Errorf("%s: class %s (weight %.2f) missing from dynamic stream", name, k, w)
			}
		}
	}
}

func newTestRng() *rand.Rand { return rand.New(rand.NewSource(1)) }

// The generator's phase bit must toggle at roughly the configured
// PhaseLen period.
func TestPhaseLength(t *testing.T) {
	p := mustProfile(t, "gzip")
	p.PhaseLen = 100
	g := New(p)
	toggles := 0
	last := false
	branches := 0
	for i := 0; i < 600_000; i++ {
		u, _ := g.Next()
		if !u.Kind.IsConditional() {
			continue
		}
		branches++
		if g.phase != last {
			toggles++
			last = g.phase
		}
	}
	if toggles == 0 {
		t.Fatal("phase never toggled")
	}
	meanLen := float64(branches) / float64(toggles)
	if meanLen < 50 || meanLen > 200 {
		t.Errorf("mean phase length %.0f branches, configured 100", meanLen)
	}
}

// Wrong-path generation across many diverge/recover cycles must stay
// inside the recorded CFG's PC space and never influence the main
// walk.
func TestWrongPathIsolationStress(t *testing.T) {
	g := New(mustProfile(t, "mcf"))
	w := NewWrongPath(g)
	// Interleave: advance main generator, periodically run wrong path.
	var mainUops []trace.Uop
	for i := 0; i < 20_000; i++ {
		u, _ := g.Next()
		mainUops = append(mainUops, u)
		if i%500 == 499 {
			w.Restart(u.PC)
			for j := 0; j < 200; j++ {
				if _, ok := w.Next(); !ok {
					t.Fatal("wrong path ended")
				}
			}
			w.Stop()
		}
	}
	// A fresh generator must reproduce the identical main stream.
	g2 := New(mustProfile(t, "mcf"))
	for i, want := range mainUops {
		got, _ := g2.Next()
		if got != want {
			t.Fatalf("wrong path leaked into main walk at uop %d", i)
		}
	}
}

// Segments share the static program but draw independent dynamic
// randomness: PCs match position-by-position only until outcomes
// diverge, and calibration-relevant statistics stay close.
func TestSegmentsIndependentButCalibrated(t *testing.T) {
	p := mustProfile(t, "gzip")
	s0 := New(p)
	p1 := p
	p1.Segment = 1
	s1 := New(p1)
	diverged := false
	for i := 0; i < 5000; i++ {
		a, _ := s0.Next()
		b, _ := s1.Next()
		if a != b {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("segment 1 replicated segment 0 exactly")
	}
	// Static branch population identical.
	k0 := New(p).BranchKinds()
	k1 := New(p1).BranchKinds()
	if len(k0) != len(k1) {
		t.Fatalf("static branch counts differ: %d vs %d", len(k0), len(k1))
	}
	for pc, kind := range k0 {
		if k1[pc] != kind {
			t.Fatalf("behavior at %#x differs across segments: %s vs %s", pc, kind, k1[pc])
		}
	}
}
