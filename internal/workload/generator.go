package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"bce/internal/trace"
)

// Profile describes one synthetic benchmark. Construct a Generator
// from it with New.
type Profile struct {
	// Name is the benchmark name (gzip, vpr, …).
	Name string
	// Seed drives both CFG construction and runtime randomness; the
	// same profile always produces the same trace.
	Seed int64
	// Blocks is the number of static basic blocks (and roughly the
	// number of static branches).
	Blocks int
	// MeanBlockLen is the average number of non-branch uops per block;
	// it sets the branch density (≈ 1 branch per MeanBlockLen+1 uops).
	MeanBlockLen int
	// LoadFrac, StoreFrac and FPFrac set the body uop mix; the rest
	// are integer ALU ops with a sprinkle of Mul/Div.
	LoadFrac, StoreFrac, FPFrac float64
	// LoopFrac is the fraction of conditional branches wired as
	// backward (loop) edges; their behavior is structurally a Loop
	// with period drawn from [LoopMin, LoopMax]. Loop dwell amplifies
	// these branches' dynamic share far beyond LoopFrac.
	LoopFrac         float64
	LoopMin, LoopMax int
	// Mix is the behavior population of the remaining (forward)
	// conditional branches.
	Mix []MixEntry
	// Mem is the data-address model.
	Mem MemProfile
	// DepWindow is how far back (in uops) sources prefer to reach for
	// their producers; smaller means longer dependence chains and
	// lower ILP. Default 8.
	DepWindow int
	// PhaseLen is the mean program-phase length in conditional
	// branches; the global phase bit toggles with probability
	// 1/PhaseLen at each branch. Default 200.
	PhaseLen int
	// Segment selects an independent runtime-randomness stream over
	// the *same* static program (CFG, behaviors and calibration are
	// untouched). The paper evaluates two trace segments per benchmark
	// (§4); experiments average across segments the same way.
	Segment int
}

type block struct {
	pc      uint64
	body    []trace.Uop // static body uops (addresses filled per-instance)
	term    trace.Uop   // static terminal; Taken/Target resolved dynamically
	behave  Behavior    // nil for unconditional terminals
	bi      int         // behavior state index
	takenTo int
	fallTo  int
	// orient is the structural taken-bias of a forward conditional
	// branch: +1 strongly taken, -1 strongly not-taken, 0 balanced.
	// The hotness probe walks with it, and behavior assignment
	// respects it, so probe hotness predicts real hotness.
	orient int8
}

// Generator emits the benchmark's correct-path uop stream. It
// implements trace.Source and never ends.
type Generator struct {
	prof   Profile
	blocks []block
	states []BranchState
	rng    *rand.Rand
	mem    *memGen
	ghist  uint64
	phase  bool
	cur    int
	pos    int
	stack  []int
	pcIdx  map[uint64]int // block start PC -> index (wrong-path entry)

	prevBlock int

	branches uint64
	uops     uint64
}

const codeBase = 0x0040_0000

// runtimeSeed derives the dynamic-randomness seed from the profile's
// seed and segment; construction randomness never depends on it.
func runtimeSeed(p Profile) int64 {
	return (p.Seed ^ 0x5E3779B97F4A7C15) + int64(p.Segment)*0x6A09E667
}

// condTail is the number of trailing blocks whose terminals are forced
// to be conditional branches; together with forward-only unconditional
// jumps this guarantees the dynamic walk always reaches conditional
// branches (no unconditional-only cycles).
const condTail = 18

// New constructs the benchmark generator for a profile. It panics on
// structurally invalid profiles (no blocks, no mix): profiles are
// compiled into the binary, so these are programming errors.
func New(p Profile) *Generator {
	if p.Blocks < 2 {
		panic(fmt.Sprintf("workload %q: need at least 2 blocks", p.Name))
	}
	if p.MeanBlockLen < 1 {
		panic(fmt.Sprintf("workload %q: MeanBlockLen < 1", p.Name))
	}
	if len(p.Mix) == 0 {
		panic(fmt.Sprintf("workload %q: empty behavior mix", p.Name))
	}
	if p.DepWindow == 0 {
		p.DepWindow = 16
	}
	if p.PhaseLen == 0 {
		p.PhaseLen = 200
	}
	if p.LoopFrac > 0 && (p.LoopMin < 2 || p.LoopMax < p.LoopMin) {
		panic(fmt.Sprintf("workload %q: bad loop period range [%d,%d]", p.Name, p.LoopMin, p.LoopMax))
	}
	// Structure (block shapes, wiring, registers) and behavior
	// assignment draw from independent streams, so tuning the behavior
	// mix never rewires the CFG: hotness stays put while the branch
	// population changes, which keeps calibration stable.
	crng := rand.New(rand.NewSource(p.Seed))
	brng := rand.New(rand.NewSource(p.Seed*0x6C62272E + 0x1B873593))
	g := &Generator{
		prof:   p,
		blocks: make([]block, p.Blocks),
		states: make([]BranchState, p.Blocks),
		rng:    rand.New(rand.NewSource(runtimeSeed(p))),
		mem:    newMemGen(p.Mem, 0),
		pcIdx:  make(map[uint64]int, p.Blocks),
	}
	// Normalize mix weights into a CDF.
	var total float64
	for _, m := range p.Mix {
		if m.Weight < 0 || m.Make == nil {
			panic(fmt.Sprintf("workload %q: bad mix entry", p.Name))
		}
		total += m.Weight
	}
	if total == 0 {
		panic(fmt.Sprintf("workload %q: zero-weight mix", p.Name))
	}
	// Fraction of forward branches that are strongly directional
	// (the Extreme mix entries); wired structurally so the hotness
	// probe can walk with the right per-branch direction.
	var extremeWeight float64
	for _, m := range p.Mix {
		if m.Extreme {
			extremeWeight += m.Weight
		}
	}
	extremeFrac := extremeWeight / total

	pc := uint64(codeBase)
	// recent destination registers for dependence wiring
	recent := make([]uint8, 0, p.DepWindow)
	for i := range g.blocks {
		b := &g.blocks[i]
		b.pc = pc
		g.pcIdx[pc] = i
		n := 1 + crng.Intn(2*p.MeanBlockLen-1) // mean ≈ MeanBlockLen
		b.body = make([]trace.Uop, n)
		for j := range b.body {
			b.body[j] = g.makeBodyUop(crng, pc, &recent)
			pc += 4
		}
		b.term = g.makeTerminal(crng, pc, i)
		// The tail of the block array is forced conditional so that,
		// combined with unconditional terminals only jumping forward,
		// no unconditional-only cycle can exist (every wrap-around
		// path crosses the conditional tail).
		if i >= p.Blocks-condTail && b.term.Kind != trace.CondBranch {
			b.term.Kind = trace.CondBranch
			b.term.Taken = false
		}
		pc += 4
		b.bi = i
		// Fallthrough goes to the next block; taken targets depend on
		// the terminal kind (wired after behavior assignment below).
		b.fallTo = (i + 1) % p.Blocks
		switch b.term.Kind {
		case trace.CondBranch:
			// Loop-shaped backward edges get their Loop behavior right
			// here, structurally: loop dwell (and hence the loop share
			// of dynamic execution) must not depend on the tunable
			// behavior mix, or calibration chases its own tail.
			// Forward branches are dealt behaviors from the mix after
			// construction (see assignBehaviors).
			if crng.Float64() < p.LoopFrac && i > 0 {
				back := 1 + crng.Intn(4)
				if back > i {
					back = i
				}
				b.takenTo = i - back
				b.behave = Loop{Period: p.LoopMin + crng.Intn(p.LoopMax-p.LoopMin+1)}
			} else {
				b.takenTo = g.zipfBlock(crng)
				// Both draws are always consumed so that tuning the
				// mix (which moves extremeFrac) cannot shift the
				// structural random stream and rewire the CFG.
				side := crng.Intn(2)
				if crng.Float64() < extremeFrac {
					b.orient = 1
					if side == 0 {
						b.orient = -1
					}
				}
			}
		default:
			// Unconditional control flow only jumps a short distance
			// forward (see condTail above for why).
			b.takenTo = (i + 1 + crng.Intn(16)) % p.Blocks
		}
	}
	// Wire terminal targets now that all block PCs are known.
	for i := range g.blocks {
		b := &g.blocks[i]
		b.term.Target = g.blocks[b.takenTo].pc
	}
	g.assignBehaviors(brng, g.probeHotness())
	// The bare-CFG probe gets hot/cold ordering right but misjudges
	// individual hot blocks; since direction (orientation) and loop
	// dwell are structural, a walk with the assigned behaviors stays
	// representative under reassignment, so one refinement pass with
	// measured hotness converges. The behavior RNG is re-seeded so
	// both passes draw identical per-branch parameters for blocks
	// whose class did not move.
	brng2 := rand.New(rand.NewSource(p.Seed*0x6C62272E + 0x1B873593))
	g.assignBehaviors(brng2, g.measuredHotness())
	g.resetWalk()
	return g
}

// measuredHotness walks the CFG with the currently assigned behaviors
// and counts conditional-branch executions per block.
func (g *Generator) measuredHotness() []uint64 {
	g.resetWalk()
	visits := make([]uint64, len(g.blocks))
	steps := 300 * len(g.blocks)
	if steps < 200_000 {
		steps = 200_000
	}
	for n := 0; n < steps; n++ {
		u, _ := g.Next()
		if u.Kind.IsConditional() {
			visits[g.prevBlock]++
		}
	}
	return visits
}

// resetWalk rewinds all dynamic state so the generator starts from a
// pristine walk (used between construction-time probes and real use).
func (g *Generator) resetWalk() {
	for i := range g.states {
		g.states[i] = BranchState{}
	}
	g.rng = rand.New(rand.NewSource(runtimeSeed(g.prof)))
	g.mem = newMemGen(g.prof.Mem, 0)
	g.ghist = 0
	g.phase = false
	g.cur, g.pos = 0, 0
	g.prevBlock = 0
	g.stack = g.stack[:0]
	g.branches, g.uops = 0, 0
}

// assignBehaviors distributes the mix classes over the forward static
// branches so each class's *dynamic* share of execution approximates
// its weight. Uniform static assignment would let a rare class win a
// super-hot block by lottery and dominate the misprediction budget,
// so per-branch hotness is estimated with a probe walk first and
// classes are dealt greedily (hottest branches first) against
// per-class dynamic budgets. Backward (loop) branches already carry
// their structural Loop behavior and are skipped.
func (g *Generator) assignBehaviors(brng *rand.Rand, visits []uint64) {
	extreme := make([]int, 0, len(g.blocks))
	middle := make([]int, 0, len(g.blocks))
	for i := range g.blocks {
		b := &g.blocks[i]
		if b.term.Kind != trace.CondBranch || b.behave != nil {
			continue
		}
		if b.orient != 0 {
			extreme = append(extreme, i)
		} else {
			middle = append(middle, i)
		}
	}
	var extremeMix, middleMix []MixEntry
	for _, m := range g.prof.Mix {
		if m.Extreme {
			extremeMix = append(extremeMix, m)
		} else {
			middleMix = append(middleMix, m)
		}
	}
	if len(extremeMix) == 0 {
		extremeMix = middleMix
	}
	if len(middleMix) == 0 {
		middleMix = extremeMix
	}
	g.deal(brng, extreme, visits, extremeMix)
	g.deal(brng, middle, visits, middleMix)
}

// deal assigns behaviors from mix to the given branch blocks via
// deterministic stratified allocation: blocks are laid out hottest
// first along [0,1] by their share of probe visits, and each class
// owns a weight-proportional interval. A block falling inside one
// class's interval gets a pure behavior; a block spanning a boundary
// gets a Blend weighted by the overlaps. Class dynamic shares
// therefore match the weights exactly, and a small weight change only
// moves boundary blocks between adjacent classes — which is what
// keeps calibration smooth (greedy fills flip discretely when a hot
// block crosses a budget edge).
func (g *Generator) deal(brng *rand.Rand, blocks []int, visits []uint64, mix []MixEntry) {
	if len(blocks) == 0 {
		return
	}
	var wtotal float64
	for _, m := range mix {
		wtotal += m.Weight
	}
	var sum uint64
	for _, bi := range blocks {
		sum += visits[bi]
	}
	if wtotal == 0 || sum == 0 {
		for _, bi := range blocks {
			g.blocks[bi].behave = g.orientedMake(brng, mix[0], bi)
		}
		return
	}
	// Class interval upper edges in cumulative-weight space.
	edges := make([]float64, len(mix))
	cumW := 0.0
	for i, m := range mix {
		cumW += m.Weight / wtotal
		edges[i] = cumW
	}
	order := append([]int(nil), blocks...)
	sortByVisitsDesc(order, visits)
	cum := 0.0
	for _, bi := range order {
		f := float64(visits[bi]) / float64(sum)
		lo, hi := cum, cum+f
		cum = hi
		// Find overlapping class intervals.
		var parts []BlendPart
		prev := 0.0
		for ci, edge := range edges {
			if edge <= lo && ci != len(edges)-1 {
				prev = edge
				continue
			}
			overlap := math.Min(edge, hi) - math.Max(prev, lo)
			if hi <= lo {
				// Zero-visit block: assign purely to the interval
				// holding the current position.
				overlap = 1
			}
			if overlap > 0 {
				parts = append(parts, BlendPart{
					Weight: overlap,
					B:      g.orientedMake(brng, mix[ci], bi),
				})
			}
			prev = edge
			if edge >= hi {
				break
			}
		}
		switch len(parts) {
		case 0:
			g.blocks[bi].behave = g.orientedMake(brng, mix[len(mix)-1], bi)
		case 1:
			g.blocks[bi].behave = parts[0].B
		default:
			g.blocks[bi].behave = NewBlend(parts)
		}
	}
}

// orientedMake builds a behavior from a mix entry, flipping biased
// behaviors onto the block's structural orientation so the probe's
// assumed direction holds.
func (g *Generator) orientedMake(brng *rand.Rand, m MixEntry, bi int) Behavior {
	bh := m.Make(brng)
	orient := g.blocks[bi].orient
	if orient == 0 {
		return bh
	}
	wantTaken := orient > 0
	switch bb := bh.(type) {
	case Biased:
		if (bb.PTaken >= 0.5) != wantTaken {
			bb.PTaken = 1 - bb.PTaken
		}
		return bb
	case ContextBiased:
		if (bb.PMajor >= 0.5) != wantTaken {
			bb.PMajor = 1 - bb.PMajor
			bb.PMinor = 1 - bb.PMinor
		}
		return bb
	case PhaseBiased:
		if (bb.P1 >= 0.5) != wantTaken {
			bb.P1 = 1 - bb.P1
			bb.P0 = 1 - bb.P0
		}
		return bb
	default:
		return bh
	}
}

// probeHotness walks the bare CFG and counts conditional-branch
// executions per block. Backward edges already know their loop period,
// so their dwell is modeled exactly; forward branches are mild coin
// flips. The estimate only needs the hot/cold ordering roughly right.
func (g *Generator) probeHotness() []uint64 {
	visits := make([]uint64, len(g.blocks))
	prng := rand.New(rand.NewSource(g.prof.Seed ^ 0x2545F491))
	cur := 0
	steps := 200 * len(g.blocks)
	if steps < 100_000 {
		steps = 100_000
	}
	for n := 0; n < steps; n++ {
		b := &g.blocks[cur]
		switch b.term.Kind {
		case trace.CondBranch:
			visits[cur]++
			pTaken := 0.5
			switch {
			case b.orient > 0:
				pTaken = 0.97
			case b.orient < 0:
				pTaken = 0.03
			}
			if l, ok := b.behave.(Loop); ok {
				pTaken = 1 - 1/float64(l.Period)
			}
			if prng.Float64() < pTaken {
				cur = b.takenTo
			} else {
				cur = b.fallTo
			}
		default:
			cur = b.takenTo
		}
	}
	return visits
}

func sortByVisitsDesc(order []int, visits []uint64) {
	sort.Slice(order, func(a, b int) bool {
		if visits[order[a]] != visits[order[b]] {
			return visits[order[a]] > visits[order[b]]
		}
		return order[a] < order[b]
	})
}

// zipfBlock picks a block index with a heavy-tailed preference for
// low indices, concentrating execution on a hot subset like real code.
func (g *Generator) zipfBlock(rng *rand.Rand) int {
	f := math.Pow(rng.Float64(), 1.6)
	i := int(f * float64(len(g.blocks)))
	if i >= len(g.blocks) {
		i = len(g.blocks) - 1
	}
	return i
}

func (g *Generator) makeBodyUop(rng *rand.Rand, pc uint64, recent *[]uint8) trace.Uop {
	u := trace.Uop{PC: pc, Dst: trace.NoReg, Src1: trace.NoReg, Src2: trace.NoReg}
	r := rng.Float64()
	p := g.prof
	switch {
	case r < p.LoadFrac:
		u.Kind = trace.Load
	case r < p.LoadFrac+p.StoreFrac:
		u.Kind = trace.Store
	case r < p.LoadFrac+p.StoreFrac+p.FPFrac:
		u.Kind = trace.FP
		if rng.Intn(20) == 0 {
			u.Kind = trace.FPDiv
		}
	default:
		u.Kind = trace.ALU
		switch rng.Intn(40) {
		case 0:
			u.Kind = trace.Div
		case 1, 2:
			u.Kind = trace.Mul
		}
	}
	u.Src1 = g.pickSrc(rng, *recent)
	if rng.Intn(3) == 0 {
		u.Src2 = g.pickSrc(rng, *recent)
	}
	if u.Kind != trace.Store {
		u.Dst = uint8(1 + rng.Intn(trace.NumRegs-1))
		*recent = append(*recent, u.Dst)
		if len(*recent) > g.prof.DepWindow {
			*recent = (*recent)[1:]
		}
	}
	return u
}

func (g *Generator) pickSrc(rng *rand.Rand, recent []uint8) uint8 {
	// Prefer a recent producer (dependence locality); fall back to a
	// random architectural register.
	if len(recent) > 0 && rng.Float64() < 0.5 {
		return recent[rng.Intn(len(recent))]
	}
	return uint8(rng.Intn(trace.NumRegs))
}

func (g *Generator) makeTerminal(rng *rand.Rand, pc uint64, i int) trace.Uop {
	u := trace.Uop{PC: pc, Dst: trace.NoReg, Src1: uint8(rng.Intn(trace.NumRegs)), Src2: trace.NoReg}
	switch r := rng.Float64(); {
	case r < 0.85:
		u.Kind = trace.CondBranch
	case r < 0.95:
		u.Kind = trace.Jump
		u.Taken = true
	case r < 0.98:
		u.Kind = trace.Call
		u.Taken = true
	default:
		u.Kind = trace.Ret
		u.Taken = true
	}
	return u
}

// Name returns the benchmark name.
func (g *Generator) Name() string { return g.prof.Name }

// Profile returns the profile the generator was built from.
func (g *Generator) Profile() Profile { return g.prof }

// StaticBranches returns the number of static conditional branches.
func (g *Generator) StaticBranches() int {
	n := 0
	for i := range g.blocks {
		if g.blocks[i].term.Kind == trace.CondBranch {
			n++
		}
	}
	return n
}

// Counts returns total uops and conditional branches emitted so far.
func (g *Generator) Counts() (uops, branches uint64) { return g.uops, g.branches }

// History returns the workload's global outcome history (for tests).
func (g *Generator) History() uint64 { return g.ghist }

// Next implements trace.Source; the stream is infinite so ok is
// always true.
func (g *Generator) Next() (trace.Uop, bool) {
	b := &g.blocks[g.cur]
	if g.pos < len(b.body) {
		u := b.body[g.pos]
		g.pos++
		if u.Kind.IsMem() {
			u.Addr = g.mem.next(g.rng)
		}
		g.uops++
		return u, true
	}
	// Terminal.
	u := b.term
	g.pos = 0
	g.prevBlock = g.cur
	switch u.Kind {
	case trace.CondBranch:
		if g.rng.Float64() < 1/float64(g.prof.PhaseLen) {
			g.phase = !g.phase
		}
		taken := b.behave.Outcome(&g.states[b.bi], Env{Ghist: g.ghist, Phase: g.phase}, g.rng)
		u.Taken = taken
		g.ghist = g.ghist<<1 | boolBit(taken)
		g.branches++
		if taken {
			g.cur = b.takenTo
		} else {
			g.cur = b.fallTo
		}
	case trace.Call:
		g.stack = append(g.stack, b.fallTo)
		g.cur = b.takenTo
	case trace.Ret:
		if n := len(g.stack); n > 0 {
			g.cur = g.stack[n-1]
			g.stack = g.stack[:n-1]
			u.Target = g.blocks[g.cur].pc
		} else {
			g.cur = b.takenTo
		}
	default: // Jump
		g.cur = b.takenTo
	}
	g.uops++
	return u, true
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

var _ trace.Source = (*Generator)(nil)

// PathSource is the wrong-path interface the timing pipeline consumes:
// a redirectable uop stream that supplies instructions fetched past a
// mispredicted branch until recovery. *WrongPath implements it over a
// Generator's CFG; Synthetic implements it for replayed traces with no
// CFG to walk.
type PathSource interface {
	// Restart points the wrong path at the given fetch target.
	Restart(targetPC uint64)
	// Stop deactivates the wrong path (on recovery).
	Stop()
	// Active reports whether a wrong path is being generated.
	Active() bool
	// Next yields the next wrong-path uop while active.
	Next() (trace.Uop, bool)
}

// BranchKinds maps each static conditional branch PC to its behavior
// class name; calibration tooling uses it to attribute mispredictions.
func (g *Generator) BranchKinds() map[uint64]string {
	out := make(map[uint64]string)
	for i := range g.blocks {
		b := &g.blocks[i]
		if b.term.Kind == trace.CondBranch && b.behave != nil {
			out[b.term.PC] = b.behave.Kind()
		}
	}
	return out
}

// BehaviorAt returns the behavior of the static conditional branch at
// pc, or nil; calibration tooling uses it to compute class-conditional
// statistics exactly.
func (g *Generator) BehaviorAt(pc uint64) Behavior {
	for i := range g.blocks {
		if g.blocks[i].term.PC == pc && g.blocks[i].term.Kind == trace.CondBranch {
			return g.blocks[i].behave
		}
	}
	return nil
}
