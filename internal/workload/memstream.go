package workload

import (
	"fmt"
	"math/rand"
)

// MemProfile models a benchmark's data-address behavior as a mixture
// of three archetypes: sequential streaming (gzip/bzip compression
// buffers), strided array walks (vpr, twolf grids), and pointer
// chasing over a working set (mcf's network simplex, perlbmk's
// hashes). The mixture fractions plus the working-set size control
// the cache hit rates and hence the memory-bound character of the
// benchmark.
type MemProfile struct {
	// SeqFrac, StrideFrac and ChaseFrac are mixture weights
	// (normalized; all zero means all-sequential).
	SeqFrac, StrideFrac, ChaseFrac float64
	// StrideBytes is the stride of the strided walker (default 256).
	StrideBytes int
	// WorkingSetBytes bounds the pointer-chase region (default 1 MB).
	WorkingSetBytes int
	// Streams is the number of concurrent sequential streams
	// (default 4).
	Streams int
}

// memGen produces effective addresses for a workload's loads and
// stores.
type memGen struct {
	prof    MemProfile
	seqCur  []uint64
	strCur  uint64
	wsMask  uint64
	wsBase  uint64
	pSeq    float64
	pStride float64
}

func newMemGen(prof MemProfile, salt uint64) *memGen {
	if prof.StrideBytes == 0 {
		prof.StrideBytes = 256
	}
	if prof.WorkingSetBytes == 0 {
		prof.WorkingSetBytes = 1 << 20
	}
	if prof.Streams == 0 {
		prof.Streams = 4
	}
	if prof.StrideBytes < 1 || prof.WorkingSetBytes < 64 || prof.Streams < 1 {
		panic(fmt.Sprintf("workload: bad memory profile %+v", prof))
	}
	total := prof.SeqFrac + prof.StrideFrac + prof.ChaseFrac
	if total == 0 {
		prof.SeqFrac, total = 1, 1
	}
	ws := uint64(1)
	for ws < uint64(prof.WorkingSetBytes) {
		ws <<= 1
	}
	// The salt offsets the sequential and strided cursors so that two
	// generators over the same profile (the main trace and the
	// wrong-path synthesizer) do not walk identical addresses — wrong
	// path work should not act as a perfect prefetcher for the
	// correct path. The pointer-chase region is shared deliberately:
	// warming a common working set is a real wrong-path side effect.
	g := &memGen{
		prof:    prof,
		seqCur:  make([]uint64, prof.Streams),
		wsMask:  ws - 1,
		wsBase:  0x2000_0000,
		strCur:  0x4000_0000 + salt*0x0080_0000,
		pSeq:    prof.SeqFrac / total,
		pStride: prof.StrideFrac / total,
	}
	for i := range g.seqCur {
		g.seqCur[i] = 0x1000_0000 + uint64(i)*0x0100_0000 + salt*0x0080_0000
	}
	return g
}

// next returns the next data address.
func (g *memGen) next(rng *rand.Rand) uint64 {
	r := rng.Float64()
	switch {
	case r < g.pSeq:
		i := rng.Intn(len(g.seqCur))
		g.seqCur[i] += 8
		return g.seqCur[i]
	case r < g.pSeq+g.pStride:
		g.strCur += uint64(g.prof.StrideBytes)
		return g.strCur
	default:
		return g.wsBase + (rng.Uint64()&g.wsMask)&^7
	}
}
