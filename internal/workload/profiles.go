package workload

import (
	"fmt"
	"math/rand"
	"sort"
)

// Mix-entry factories. Each returns a MixEntry whose Make draws
// per-branch parameters, so two branches in the same class still
// differ (their own bias level, loop period, context bit…).

// BiasedMix yields branches taken (or not taken — half are inverted)
// with bias drawn from [lo, hi], quadratically skewed toward hi: real
// branch populations are dominated by very strongly biased branches
// (guards, error checks), with a thinner tail of weaker ones.
func BiasedMix(weight, lo, hi float64) MixEntry {
	return MixEntry{Weight: weight, Extreme: true, Make: func(rng *rand.Rand) Behavior {
		u := rng.Float64()
		p := hi - (hi-lo)*u*u
		if rng.Intn(2) == 0 {
			p = 1 - p
		}
		return Biased{PTaken: p}
	}}
}

// PatternMix yields repeating local patterns of length [minL, maxL].
func PatternMix(weight float64, minL, maxL int) MixEntry {
	return MixEntry{Weight: weight, Stateful: true, Make: func(rng *rand.Rand) Behavior {
		n := minL + rng.Intn(maxL-minL+1)
		seq := make([]bool, n)
		for i := range seq {
			seq[i] = rng.Intn(2) == 0
		}
		// Guarantee the pattern is not constant (that would be Biased).
		seq[0] = true
		seq[n-1] = false
		return Pattern{Seq: seq}
	}}
}

// GCorrMix yields branches whose outcome is a linear function of 2-3
// recent global-history bits below maxBit, flipped with probability
// noise. With maxBit <= 14 the baseline gshare can learn them.
func GCorrMix(weight float64, maxBit int, noise float64) MixEntry {
	return MixEntry{Weight: weight, Make: func(rng *rand.Rand) Behavior {
		n := 2 + rng.Intn(2)
		bits := make([]int, n)
		signs := make([]int, n)
		for i := range bits {
			bits[i] = rng.Intn(maxBit)
			signs[i] = 1 - 2*rng.Intn(2)
		}
		return GlobalCorr{Bits: bits, Signs: signs, Noise: noise}
	}}
}

// CtxBiasMix yields the misprediction-generating construction: a
// strong hi-probability majority bias that flips toward lo inside a
// rare minority context — a 2-bit conjunction of history bits drawn
// from [minBit, maxBit] (use >= 16 to exceed the baseline predictor's
// reach). Branch direction is randomly inverted per branch.
func CtxBiasMix(weight float64, minBit, maxBit int, hi, lo float64) MixEntry {
	return MixEntry{Weight: weight, Extreme: true, Make: func(rng *rand.Rand) Behavior {
		pMaj, pMin := hi, lo
		bits := make([]int, 0, 3)
		for len(bits) < 3 {
			c := minBit + rng.Intn(maxBit-minBit+1)
			dup := false
			for _, e := range bits {
				if e == c {
					dup = true
				}
			}
			if !dup {
				bits = append(bits, c)
			}
		}
		want := []bool{rng.Intn(2) == 0, rng.Intn(2) == 0, rng.Intn(2) == 0}
		return ContextBiased{
			Bits:   bits,
			Want:   want,
			PMajor: pMaj,
			PMinor: pMin,
		}
	}}
}

// PhaseMix yields branches whose bias follows the benchmark's global
// program phase (hi in one phase, lo in the other, randomly swapped
// per branch): the source of bursty, history-detectable
// mispredictions.
func PhaseMix(weight, hi, lo float64) MixEntry {
	return MixEntry{Weight: weight, Extreme: true, Make: func(rng *rand.Rand) Behavior {
		return PhaseBiased{P1: hi, P0: lo}
	}}
}

// RandomMix yields 50/50 unpredictable branches.
func RandomMix(weight float64) MixEntry {
	return MixEntry{Weight: weight, Make: func(rng *rand.Rand) Behavior {
		return Random{}
	}}
}

// Table2Target records the paper's measured branch mispredicts per
// 1000 uops for each benchmark (Table 2, column 1), the calibration
// target for the profiles below.
var Table2Target = map[string]float64{
	"gzip": 5.2, "vpr": 6.6, "gcc": 2.3, "mcf": 16, "crafty": 3.4,
	"link": 4.6, "eon": 0.5, "perlbmk": 0.7, "gap": 1.7, "vortex": 0.2,
	"bzip": 1.1, "twolf": 6.3,
}

// Profiles returns the 12 SPECint 2000 benchmark models in the
// paper's Table 2 order. Each call returns fresh copies.
func Profiles() []Profile {
	return []Profile{
		{
			// gzip: compression; moderate mispredicts, streaming memory.
			Name: "gzip", Seed: 101, Blocks: 300, MeanBlockLen: 6,
			LoadFrac: 0.24, StoreFrac: 0.10, FPFrac: 0,
			LoopFrac: 0.011, LoopMin: 6, LoopMax: 20,
			Mix: []MixEntry{
				BiasedMix(0.6725, 0.995, 0.9998),
				BiasedMix(0.5072, 0.90, 0.97),
				GCorrMix(0.0428, 12, 0.01),
				PatternMix(0.0181, 3, 6),
				PhaseMix(0.0195, 0.97, 0.15),
				CtxBiasMix(0.7492, 17, 28, 0.985, 0.08),
				RandomMix(0.0269),
			},
			Mem: MemProfile{SeqFrac: 0.7, StrideFrac: 0.2, ChaseFrac: 0.1, WorkingSetBytes: 256 << 10},
		},
		{
			// vpr: place & route; data-dependent branches, strided grids.
			Name: "vpr", Seed: 102, Blocks: 400, MeanBlockLen: 6,
			LoadFrac: 0.26, StoreFrac: 0.09, FPFrac: 0.06,
			LoopFrac: 0.0145, LoopMin: 6, LoopMax: 20,
			Mix: []MixEntry{
				BiasedMix(0.5843, 0.995, 0.9998),
				BiasedMix(0.1026, 0.90, 0.97),
				GCorrMix(0.0544, 12, 0.01),
				PatternMix(0.0036, 3, 6),
				PhaseMix(0.0167, 0.97, 0.15),
				CtxBiasMix(0.2330, 17, 30, 0.985, 0.08),
				RandomMix(0.0054),
			},
			Mem: MemProfile{SeqFrac: 0.3, StrideFrac: 0.5, ChaseFrac: 0.2, WorkingSetBytes: 1 << 20, StrideBytes: 128},
		},
		{
			// gcc: huge static footprint, mostly well-predicted.
			Name: "gcc", Seed: 103, Blocks: 1200, MeanBlockLen: 6,
			LoadFrac: 0.25, StoreFrac: 0.11, FPFrac: 0,
			LoopFrac: 0.0045, LoopMin: 6, LoopMax: 20,
			Mix: []MixEntry{
				BiasedMix(0.8551, 0.995, 0.9998),
				BiasedMix(0.1172, 0.90, 0.97),
				GCorrMix(0.0189, 12, 0.01),
				PatternMix(0.0043, 3, 6),
				PhaseMix(0.0081, 0.97, 0.15),
				CtxBiasMix(0.2665, 17, 29, 0.985, 0.08),
				RandomMix(0.0063),
			},
			Mem: MemProfile{SeqFrac: 0.45, StrideFrac: 0.25, ChaseFrac: 0.3, WorkingSetBytes: 2 << 20},
		},
		{
			// mcf: network simplex; terrible branches and pointer chasing.
			Name: "mcf", Seed: 104, Blocks: 250, MeanBlockLen: 5,
			LoadFrac: 0.32, StoreFrac: 0.08, FPFrac: 0,
			LoopFrac: 0.0173, LoopMin: 6, LoopMax: 20,
			Mix: []MixEntry{
				BiasedMix(0.1366, 0.995, 0.9998),
				BiasedMix(0.1289, 0.90, 0.97),
				GCorrMix(0.1129, 12, 0.01),
				PatternMix(0.0045, 3, 6),
				PhaseMix(0.0210, 0.97, 0.15),
				CtxBiasMix(0.2927, 16, 31, 0.985, 0.08),
				RandomMix(0.0068),
			},
			Mem: MemProfile{SeqFrac: 0.1, StrideFrac: 0.1, ChaseFrac: 0.8, WorkingSetBytes: 16 << 20},
		},
		{
			// crafty: chess; long correlated chains, bitboard ALU mix.
			Name: "crafty", Seed: 105, Blocks: 500, MeanBlockLen: 7,
			LoadFrac: 0.22, StoreFrac: 0.07, FPFrac: 0,
			LoopFrac: 0.0079, LoopMin: 6, LoopMax: 20,
			Mix: []MixEntry{
				BiasedMix(0.7554, 0.995, 0.9998),
				BiasedMix(0.6298, 0.90, 0.97),
				GCorrMix(0.0320, 12, 0.01),
				PatternMix(0.0917, 3, 6),
				PhaseMix(0.0143, 0.97, 0.15),
				CtxBiasMix(0.6298, 17, 27, 0.985, 0.08),
				RandomMix(0.1398),
			},
			Mem: MemProfile{SeqFrac: 0.4, StrideFrac: 0.3, ChaseFrac: 0.3, WorkingSetBytes: 512 << 10},
		},
		{
			// link (parser): dictionary walks over linked structures.
			Name: "link", Seed: 106, Blocks: 450, MeanBlockLen: 6,
			LoadFrac: 0.27, StoreFrac: 0.10, FPFrac: 0,
			LoopFrac: 0.0096, LoopMin: 6, LoopMax: 20,
			Mix: []MixEntry{
				BiasedMix(0.7103, 0.995, 0.9998),
				BiasedMix(0.1447, 0.90, 0.97),
				GCorrMix(0.0379, 12, 0.01),
				PatternMix(0.0051, 3, 6),
				PhaseMix(0.0117, 0.97, 0.15),
				CtxBiasMix(0.3283, 17, 29, 0.985, 0.08),
				RandomMix(0.0076),
			},
			Mem: MemProfile{SeqFrac: 0.25, StrideFrac: 0.25, ChaseFrac: 0.5, WorkingSetBytes: 4 << 20},
		},
		{
			// eon: ray tracing; FP heavy, very predictable branches.
			Name: "eon", Seed: 107, Blocks: 350, MeanBlockLen: 9,
			LoadFrac: 0.22, StoreFrac: 0.10, FPFrac: 0.25,
			LoopFrac: 0.0011, LoopMin: 6, LoopMax: 20,
			Mix: []MixEntry{
				BiasedMix(0.9550, 0.995, 0.9998),
				BiasedMix(0.0980, 0.90, 0.97),
				GCorrMix(0.0059, 12, 0.01),
				PatternMix(0.0036, 3, 6),
				PhaseMix(0.0032, 0.97, 0.15),
				CtxBiasMix(0.2229, 18, 26, 0.985, 0.08),
				RandomMix(0.0056),
			},
			Mem: MemProfile{SeqFrac: 0.55, StrideFrac: 0.35, ChaseFrac: 0.1, WorkingSetBytes: 256 << 10},
		},
		{
			// perlbmk: interpreter; big dispatch but predictable overall.
			Name: "perlbmk", Seed: 1108, Blocks: 900, MeanBlockLen: 7,
			LoadFrac: 0.26, StoreFrac: 0.12, FPFrac: 0,
			LoopFrac: 0.0013, LoopMin: 6, LoopMax: 20,
			Mix: []MixEntry{
				BiasedMix(0.9496, 0.995, 0.9998),
				BiasedMix(0.0217, 0.90, 0.97),
				GCorrMix(0.0066, 12, 0.01),
				PatternMix(0.0006, 3, 6),
				PhaseMix(0.0036, 0.97, 0.15),
				CtxBiasMix(0.0491, 17, 28, 0.985, 0.08),
				RandomMix(0.0012),
			},
			Mem: MemProfile{SeqFrac: 0.3, StrideFrac: 0.2, ChaseFrac: 0.5, WorkingSetBytes: 1 << 20},
		},
		{
			// gap: group theory; loop-dominated, arrays.
			Name: "gap", Seed: 7109, Blocks: 400, MeanBlockLen: 7,
			LoadFrac: 0.25, StoreFrac: 0.10, FPFrac: 0.02,
			LoopFrac: 0.0031, LoopMin: 6, LoopMax: 20,
			Mix: []MixEntry{
				BiasedMix(0.8777, 0.995, 0.9998),
				BiasedMix(0.3880, 0.90, 0.97),
				GCorrMix(0.0160, 12, 0.01),
				PatternMix(0.0662, 3, 6),
				PhaseMix(0.0683, 0.97, 0.15),
				CtxBiasMix(0.3880, 17, 28, 0.985, 0.08),
				RandomMix(0.0991),
			},
			Mem: MemProfile{SeqFrac: 0.5, StrideFrac: 0.3, ChaseFrac: 0.2, WorkingSetBytes: 512 << 10},
		},
		{
			// vortex: OO database; famously predictable branches.
			Name: "vortex", Seed: 5110, Blocks: 800, MeanBlockLen: 7,
			LoadFrac: 0.28, StoreFrac: 0.13, FPFrac: 0,
			LoopFrac: 0.0004, LoopMin: 6, LoopMax: 20,
			Mix: []MixEntry{
				BiasedMix(0.9856, 0.995, 0.9998),
				BiasedMix(0.0035, 0.90, 0.97),
				GCorrMix(0.0019, 12, 0.01),
				PatternMix(0.0001, 3, 6),
				PhaseMix(0.0006, 0.97, 0.15),
				CtxBiasMix(0.0081, 18, 24, 0.985, 0.08),
				RandomMix(0.0002),
			},
			Mem: MemProfile{SeqFrac: 0.35, StrideFrac: 0.25, ChaseFrac: 0.4, WorkingSetBytes: 2 << 20},
		},
		{
			// bzip: compression; predictable with bursts.
			Name: "bzip", Seed: 111, Blocks: 280, MeanBlockLen: 6,
			LoadFrac: 0.24, StoreFrac: 0.10, FPFrac: 0,
			LoopFrac: 0.0017, LoopMin: 6, LoopMax: 20,
			Mix: []MixEntry{
				BiasedMix(0.9307, 0.995, 0.9998),
				BiasedMix(0.0991, 0.90, 0.97),
				GCorrMix(0.0091, 12, 0.01),
				PatternMix(0.0036, 3, 6),
				PhaseMix(0.0123, 0.97, 0.15),
				CtxBiasMix(0.2244, 17, 28, 0.985, 0.08),
				RandomMix(0.0053),
			},
			Mem: MemProfile{SeqFrac: 0.75, StrideFrac: 0.15, ChaseFrac: 0.1, WorkingSetBytes: 1 << 20},
		},
		{
			// twolf: placement; hard data-dependent branches.
			Name: "twolf", Seed: 112, Blocks: 420, MeanBlockLen: 6,
			LoadFrac: 0.26, StoreFrac: 0.09, FPFrac: 0.04,
			LoopFrac: 0.0138, LoopMin: 6, LoopMax: 20,
			Mix: []MixEntry{
				BiasedMix(0.6032, 0.995, 0.9998),
				BiasedMix(0.2368, 0.90, 0.97),
				GCorrMix(0.0519, 12, 0.01),
				PatternMix(0.0084, 3, 6),
				PhaseMix(0.0160, 0.97, 0.15),
				CtxBiasMix(0.5378, 16, 30, 0.985, 0.08),
				RandomMix(0.0126),
			},
			Mem: MemProfile{SeqFrac: 0.25, StrideFrac: 0.45, ChaseFrac: 0.3, WorkingSetBytes: 2 << 20, StrideBytes: 128},
		},
	}
}

// ByName returns the profile for a benchmark name.
func ByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, Names())
}

// Names returns the benchmark names in Table 2 order.
func Names() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// SortedNames returns the benchmark names sorted alphabetically.
func SortedNames() []string {
	n := Names()
	sort.Strings(n)
	return n
}
