package workload

import (
	"math/rand"

	"bce/internal/trace"
)

// Replay adapts a recorded trace (any trace.Source, typically a
// trace.Reader over a .bcet file) for the timing pipeline: it loops
// the recorded uops when the recording is shorter than the requested
// run, and builds an incremental PC index so the paired Synthetic
// wrong-path source can resume real recorded code at a mispredicted
// branch's target.
type Replay struct {
	src     trace.Source
	buf     []trace.Uop
	pcIdx   map[uint64]int // PC -> index of first occurrence in buf
	pos     int            // replay cursor when looping
	looping bool
}

// NewReplay wraps a recorded trace source. The whole source is
// buffered on first pass so it can loop; trace segments in the
// hundreds of millions of uops should be split before replay.
func NewReplay(src trace.Source) *Replay {
	if src == nil {
		panic("workload: nil replay source")
	}
	return &Replay{src: src, pcIdx: make(map[uint64]int)}
}

// Next implements trace.Source. After the recording ends, the stream
// loops from the start (an empty recording yields ok=false).
func (r *Replay) Next() (trace.Uop, bool) {
	if !r.looping {
		u, ok := r.src.Next()
		if ok {
			if _, seen := r.pcIdx[u.PC]; !seen {
				r.pcIdx[u.PC] = len(r.buf)
			}
			r.buf = append(r.buf, u)
			return u, true
		}
		r.looping = true
		r.pos = 0
	}
	if len(r.buf) == 0 {
		return trace.Uop{}, false
	}
	u := r.buf[r.pos]
	r.pos = (r.pos + 1) % len(r.buf)
	return u, true
}

// Recorded returns the number of distinct uops buffered so far.
func (r *Replay) Recorded() int { return len(r.buf) }

// Err surfaces the underlying source's terminal error when the source
// exposes one (trace.Reader does). A recorded trace that ends in a
// decode error would otherwise silently loop its truncated prefix —
// callers should check Err after a replayed run and treat a non-nil
// result as a corrupt input, not a short one.
func (r *Replay) Err() error {
	if e, ok := r.src.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// WrongPath returns a wrong-path synthesizer over the replayed code:
// targets that match recorded PCs resume the recording from there
// (with randomized branch directions); unseen targets fall back to a
// synthetic instruction mix.
func (r *Replay) WrongPath(seed int64) *Synthetic {
	return &Synthetic{replay: r, rng: rand.New(rand.NewSource(seed))}
}

var _ trace.Source = (*Replay)(nil)

// Synthetic is the wrong-path source for replayed traces. When the
// mispredicted target is a PC the recording has visited, it re-serves
// the recorded uops from that point (randomizing conditional branch
// directions, since the wrong path's outcomes are unknowable); for
// unseen targets it emits a generic instruction mix at the target PC.
// Either way the uops are squashed before retirement, so only their
// resource footprint matters.
type Synthetic struct {
	replay *Replay
	rng    *rand.Rand
	pos    int // cursor into replay.buf, -1 when synthesizing
	pc     uint64
	live   bool
}

// Restart implements PathSource.
func (s *Synthetic) Restart(targetPC uint64) {
	s.live = true
	if i, ok := s.replay.pcIdx[targetPC]; ok {
		s.pos = i
		return
	}
	s.pos = -1
	s.pc = targetPC
}

// Stop implements PathSource.
func (s *Synthetic) Stop() { s.live = false }

// Active implements PathSource.
func (s *Synthetic) Active() bool { return s.live }

// Next implements PathSource.
func (s *Synthetic) Next() (trace.Uop, bool) {
	if !s.live {
		return trace.Uop{}, false
	}
	if s.pos >= 0 && s.pos < len(s.replay.buf) {
		u := s.replay.buf[s.pos]
		s.pos++
		if u.Kind.IsConditional() {
			u.Taken = s.rng.Intn(2) == 0
		}
		return u, true
	}
	// Synthetic mix: mostly ALU with some loads, one conditional
	// branch every 8 uops, walking forward from the target.
	u := trace.Uop{PC: s.pc, Dst: trace.NoReg, Src1: trace.NoReg, Src2: trace.NoReg}
	switch s.rng.Intn(8) {
	case 0:
		u.Kind = trace.CondBranch
		u.Taken = s.rng.Intn(2) == 0
		u.Target = s.pc + 64
	case 1, 2:
		u.Kind = trace.Load
		u.Addr = 0x2000_0000 + s.rng.Uint64()&0xFFFF8
		u.Dst = uint8(1 + s.rng.Intn(trace.NumRegs-1))
	default:
		u.Kind = trace.ALU
		u.Dst = uint8(1 + s.rng.Intn(trace.NumRegs-1))
		u.Src1 = uint8(s.rng.Intn(trace.NumRegs))
	}
	s.pc += 4
	return u, true
}

var _ PathSource = (*Synthetic)(nil)
