package workload

import (
	"bytes"
	"testing"

	"bce/internal/trace"
)

func recordTrace(t *testing.T, bench string, n int) *trace.Reader {
	t.Helper()
	g := New(mustProfile(t, bench))
	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	for i := 0; i < n; i++ {
		u, _ := g.Next()
		if err := w.WriteUop(u); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return trace.NewReader(bytes.NewReader(buf.Bytes()))
}

func TestReplayMatchesRecording(t *testing.T) {
	const n = 5000
	r := NewReplay(recordTrace(t, "gzip", n))
	g := New(mustProfile(t, "gzip"))
	for i := 0; i < n; i++ {
		want, _ := g.Next()
		got, ok := r.Next()
		if !ok || got != want {
			t.Fatalf("uop %d: got %+v ok=%v, want %+v", i, got, ok, want)
		}
	}
	if r.Recorded() != n {
		t.Fatalf("Recorded() = %d", r.Recorded())
	}
}

func TestReplayLoops(t *testing.T) {
	const n = 1000
	r := NewReplay(recordTrace(t, "vpr", n))
	first := make([]trace.Uop, n)
	for i := range first {
		first[i], _ = r.Next()
	}
	for i := 0; i < n; i++ {
		u, ok := r.Next()
		if !ok || u != first[i] {
			t.Fatalf("loop uop %d diverged", i)
		}
	}
}

func TestReplayEmpty(t *testing.T) {
	r := NewReplay(trace.NewSliceSource(nil))
	if _, ok := r.Next(); ok {
		t.Fatal("empty replay produced a uop")
	}
}

func TestReplayNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewReplay(nil) did not panic")
		}
	}()
	NewReplay(nil)
}

func TestSyntheticWrongPathSeenTarget(t *testing.T) {
	const n = 3000
	r := NewReplay(recordTrace(t, "gzip", n))
	// Drain to index all PCs; find a branch target that was visited.
	var target uint64
	for i := 0; i < n; i++ {
		u, _ := r.Next()
		if u.Kind.IsConditional() && u.Taken {
			target = u.Target
		}
	}
	if target == 0 {
		t.Skip("no taken branch in recording prefix")
	}
	wp := r.WrongPath(1)
	if wp.Active() {
		t.Fatal("fresh synthetic active")
	}
	wp.Restart(target)
	u, ok := wp.Next()
	if !ok {
		t.Fatal("no wrong-path uop")
	}
	if u.PC != target {
		t.Fatalf("wrong path starts at %#x, want %#x", u.PC, target)
	}
	for i := 0; i < 2000; i++ {
		if _, ok := wp.Next(); !ok {
			t.Fatal("wrong path ended while active")
		}
	}
	wp.Stop()
	if wp.Active() {
		t.Fatal("Stop did not deactivate")
	}
	if _, ok := wp.Next(); ok {
		t.Fatal("stopped wrong path produced uops")
	}
}

func TestSyntheticWrongPathUnseenTarget(t *testing.T) {
	r := NewReplay(recordTrace(t, "gzip", 500))
	for {
		if _, ok := r.Next(); !ok {
			break
		}
		if r.Recorded() >= 500 {
			break
		}
	}
	wp := r.WrongPath(2)
	wp.Restart(0xDEAD_0000) // never recorded
	kinds := map[trace.Kind]int{}
	for i := 0; i < 1000; i++ {
		u, ok := wp.Next()
		if !ok || !u.Kind.Valid() {
			t.Fatal("synthetic mix broke")
		}
		kinds[u.Kind]++
	}
	if kinds[trace.ALU] == 0 || kinds[trace.Load] == 0 || kinds[trace.CondBranch] == 0 {
		t.Fatalf("synthetic mix missing kinds: %v", kinds)
	}
}
