package workload

import (
	"math/rand"
	"testing"

	"bce/internal/trace"
)

func TestGeneratorDeterminism(t *testing.T) {
	p, err := ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	a, b := New(p), New(p)
	for i := 0; i < 20000; i++ {
		ua, _ := a.Next()
		ub, _ := b.Next()
		if ua != ub {
			t.Fatalf("divergence at uop %d: %v vs %v", i, ua, ub)
		}
	}
}

func TestGeneratorBranchDensity(t *testing.T) {
	for _, p := range Profiles() {
		g := New(p)
		const n = 50000
		branches := 0
		for i := 0; i < n; i++ {
			u, ok := g.Next()
			if !ok {
				t.Fatalf("%s: stream ended", p.Name)
			}
			if u.IsConditional() {
				branches++
			}
		}
		// Expected ≈ 0.85/(MeanBlockLen+1) conditional terminals/uop.
		want := 0.85 / float64(p.MeanBlockLen+1)
		got := float64(branches) / n
		if got < want*0.5 || got > want*1.6 {
			t.Errorf("%s: branch density %.4f, expected near %.4f", p.Name, got, want)
		}
		uops, brs := g.Counts()
		if uops != n || brs != uint64(branches) {
			t.Errorf("%s: Counts() = %d,%d want %d,%d", p.Name, uops, brs, n, branches)
		}
	}
}

func TestGeneratorUopValidity(t *testing.T) {
	g := New(mustProfile(t, "mcf"))
	for i := 0; i < 30000; i++ {
		u, _ := g.Next()
		if !u.Kind.Valid() {
			t.Fatalf("invalid kind at %d: %v", i, u)
		}
		if u.Kind.IsMem() && u.Addr == 0 {
			t.Fatalf("memory uop without address: %v", u)
		}
		if u.IsBranch() && !u.Kind.IsConditional() && !u.Taken {
			t.Fatalf("unconditional branch not taken: %v", u)
		}
		if u.Kind.IsConditional() && u.Target == 0 {
			t.Fatalf("branch without target: %v", u)
		}
		if u.PC < codeBase {
			t.Fatalf("uop below code base: %v", u)
		}
	}
}

func TestGeneratorControlFlowConsistency(t *testing.T) {
	// After a taken conditional branch, the next uop's PC must equal
	// the branch target; after a not-taken one it must not.
	g := New(mustProfile(t, "vpr"))
	var prev trace.Uop
	havePrev := false
	for i := 0; i < 30000; i++ {
		u, _ := g.Next()
		if havePrev && prev.Kind.IsConditional() {
			if prev.Taken && u.PC != prev.Target {
				t.Fatalf("taken branch %v followed by %v", prev, u)
			}
			if !prev.Taken && u.PC == prev.Target && prev.Target != prev.PC+4 {
				t.Fatalf("not-taken branch %v jumped to target", prev)
			}
		}
		prev, havePrev = u, true
	}
}

func TestGeneratorHotness(t *testing.T) {
	// Execution must concentrate: the top 10% of static branches
	// should carry well over 10% of dynamic instances.
	g := New(mustProfile(t, "gcc"))
	counts := map[uint64]int{}
	total := 0
	for i := 0; i < 200000; i++ {
		u, _ := g.Next()
		if u.IsConditional() {
			counts[u.PC]++
			total++
		}
	}
	if len(counts) < 20 {
		t.Fatalf("only %d static branches exercised", len(counts))
	}
	var all []int
	for _, c := range counts {
		all = append(all, c)
	}
	// Select the top decile by simple pass.
	max10 := len(all) / 10
	if max10 < 1 {
		max10 = 1
	}
	// partial selection: repeatedly extract max (small N).
	top := 0
	for k := 0; k < max10; k++ {
		best := -1
		for i, c := range all {
			if c > 0 && (best < 0 || c > all[best]) {
				best = i
			}
		}
		top += all[best]
		all[best] = -1
	}
	if float64(top) < 0.3*float64(total) {
		t.Errorf("top decile carries only %.1f%% of branches; hotness too flat",
			100*float64(top)/float64(total))
	}
}

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 12 {
		t.Fatalf("%d profiles, want 12", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		if _, ok := Table2Target[p.Name]; !ok {
			t.Errorf("profile %q missing Table2Target entry", p.Name)
		}
		g := New(p) // must not panic
		if g.StaticBranches() < 10 {
			t.Errorf("%s: only %d static branches", p.Name, g.StaticBranches())
		}
	}
	for name := range Table2Target {
		if !seen[name] {
			t.Errorf("Table2Target has %q but no profile", name)
		}
	}
	if len(Names()) != 12 || len(SortedNames()) != 12 {
		t.Error("Names()/SortedNames() size")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) did not error")
	}
}

func TestNewPanics(t *testing.T) {
	bad := []Profile{
		{Name: "x", Blocks: 1, MeanBlockLen: 5, Mix: []MixEntry{RandomMix(1)}},
		{Name: "x", Blocks: 10, MeanBlockLen: 0, Mix: []MixEntry{RandomMix(1)}},
		{Name: "x", Blocks: 10, MeanBlockLen: 5},
		{Name: "x", Blocks: 10, MeanBlockLen: 5, Mix: []MixEntry{{Weight: 0}}},
	}
	for i, p := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New did not panic", i)
				}
			}()
			New(p)
		}()
	}
}

func mustProfile(t *testing.T, name string) Profile {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBehaviorClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var st BranchState

	b := Biased{PTaken: 0.9}
	taken := 0
	for i := 0; i < 10000; i++ {
		if b.Outcome(&st, Env{}, rng) {
			taken++
		}
	}
	if taken < 8700 || taken > 9300 {
		t.Errorf("Biased(0.9): %d/10000 taken", taken)
	}

	l := Loop{Period: 5}
	st = BranchState{}
	seq := make([]bool, 10)
	for i := range seq {
		seq[i] = l.Outcome(&st, Env{}, rng)
	}
	want := []bool{true, true, true, true, false, true, true, true, true, false}
	for i := range seq {
		if seq[i] != want[i] {
			t.Fatalf("Loop(5) seq = %v", seq)
		}
	}

	p := Pattern{Seq: []bool{true, false, true}}
	st = BranchState{}
	got := []bool{}
	for i := 0; i < 6; i++ {
		got = append(got, p.Outcome(&st, Env{}, rng))
	}
	for i, w := range []bool{true, false, true, true, false, true} {
		if got[i] != w {
			t.Fatalf("Pattern seq = %v", got)
		}
	}

	gc := GlobalCorr{Bits: []int{0, 2}, Signs: []int{1, 1}}
	// hist 0b101: bits 0 and 2 set -> sum +2 -> taken.
	if !gc.Outcome(&st, Env{Ghist: 0b101}, rng) {
		t.Error("GlobalCorr positive case")
	}
	// hist 0: both -1 -> sum -2 -> not taken.
	if gc.Outcome(&st, Env{}, rng) {
		t.Error("GlobalCorr negative case")
	}

	cb := ContextBiased{Bits: []int{3, 5}, Want: []bool{true, true}, PMajor: 1.0, PMinor: 0.0}
	if cb.Outcome(&st, Env{Ghist: 1<<3 | 1<<5}, rng) {
		t.Error("ContextBiased minority context not detected")
	}
	if !cb.Outcome(&st, Env{Ghist: 1 << 3}, rng) {
		t.Error("ContextBiased majority context misfired")
	}

	r := Random{}
	n := 0
	for i := 0; i < 10000; i++ {
		if r.Outcome(&st, Env{}, rng) {
			n++
		}
	}
	if n < 4700 || n > 5300 {
		t.Errorf("Random: %d/10000", n)
	}

	for _, bh := range []Behavior{b, l, p, gc, cb, r} {
		if bh.Kind() == "" {
			t.Errorf("%T empty Kind", bh)
		}
	}
}

func TestWrongPath(t *testing.T) {
	g := New(mustProfile(t, "gzip"))
	w := NewWrongPath(g)
	if w.Active() {
		t.Fatal("fresh wrong path active")
	}
	if _, ok := w.Next(); ok {
		t.Fatal("inactive wrong path produced uops")
	}
	// Drive the generator to find a branch target, then restart the
	// wrong path there.
	var target uint64
	for i := 0; i < 1000; i++ {
		u, _ := g.Next()
		if u.IsConditional() {
			target = u.Target
			break
		}
	}
	if target == 0 {
		t.Fatal("no branch found")
	}
	before, _ := g.Counts()
	w.Restart(target)
	if !w.Active() {
		t.Fatal("Restart did not activate")
	}
	first, ok := w.Next()
	if !ok {
		t.Fatal("active wrong path produced nothing")
	}
	if first.PC != target {
		t.Errorf("wrong path starts at %#x, want %#x", first.PC, target)
	}
	for i := 0; i < 5000; i++ {
		u, ok := w.Next()
		if !ok || !u.Kind.Valid() {
			t.Fatal("wrong path ended or invalid")
		}
	}
	// Wrong path must not mutate the main generator.
	after, _ := g.Counts()
	if before != after {
		t.Error("wrong path advanced the main generator")
	}
	w.Stop()
	if w.Active() {
		t.Error("Stop did not deactivate")
	}
	// Restart at a non-block PC hashes to some block; must not panic.
	w.Restart(0xDEAD_BEEF)
	if _, ok := w.Next(); !ok {
		t.Error("hashed restart produced nothing")
	}
}

func newMemGen2(p MemProfile) *memGen { return newMemGen(p, 0) }

func TestMemGenMixture(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := newMemGen2(MemProfile{SeqFrac: 1})
	a1 := g.next(rng)
	a2 := g.next(rng)
	_ = a1
	_ = a2
	// All-sequential: addresses from the same stream ascend by 8.
	one := newMemGen2(MemProfile{SeqFrac: 1, Streams: 1})
	prev := one.next(rng)
	for i := 0; i < 100; i++ {
		cur := one.next(rng)
		if cur != prev+8 {
			t.Fatalf("sequential stream jumped: %#x -> %#x", prev, cur)
		}
		prev = cur
	}
	// Chase stays within the working set.
	ch := newMemGen2(MemProfile{ChaseFrac: 1, WorkingSetBytes: 4096})
	for i := 0; i < 1000; i++ {
		a := ch.next(rng)
		if a < 0x2000_0000 || a >= 0x2000_0000+4096 {
			t.Fatalf("chase address %#x outside working set", a)
		}
		if a&7 != 0 {
			t.Fatalf("unaligned chase address %#x", a)
		}
	}
	// Stride advances by StrideBytes.
	st := newMemGen2(MemProfile{StrideFrac: 1, StrideBytes: 128})
	p1 := st.next(rng)
	p2 := st.next(rng)
	if p2 != p1+128 {
		t.Fatalf("stride %#x -> %#x", p1, p2)
	}
}

func TestMemGenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad mem profile did not panic")
		}
	}()
	newMemGen2(MemProfile{WorkingSetBytes: 1})
}

func BenchmarkGenerator(b *testing.B) {
	p, _ := ByName("gzip")
	g := New(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
