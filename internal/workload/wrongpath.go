package workload

import (
	"math/rand"

	"bce/internal/trace"
)

// WrongPath synthesizes the instruction stream fetched past a
// mispredicted branch. A real execution-driven simulator executes
// actual wrong-path code; a trace only records the correct path, so we
// walk the *same* static CFG from the mispredicted target with
// randomized branch outcomes (DESIGN.md substitution 3). The uops are
// real static code — same PCs, kinds and register structure — so
// wrong-path branches index the same predictor and estimator tables a
// real front end would touch; only their outcomes are synthetic, which
// is irrelevant because wrong-path uops are squashed, never retired or
// trained.
type WrongPath struct {
	g    *Generator
	rng  *rand.Rand
	mem  *memGen
	cur  int
	pos  int
	live bool
}

// NewWrongPath returns a wrong-path synthesizer over g's CFG. It
// never mutates g.
func NewWrongPath(g *Generator) *WrongPath {
	return &WrongPath{
		g:   g,
		rng: rand.New(rand.NewSource((g.prof.Seed ^ 0x5DEECE66D) + int64(g.prof.Segment)*0x2545F491)),
		mem: newMemGen(g.prof.Mem, 1),
	}
}

// Restart points the wrong path at the given fetch target. Targets
// that are block starts (the usual case: a branch target or a
// fall-through PC) resume at that block; anything else hashes onto
// some block.
func (w *WrongPath) Restart(targetPC uint64) {
	if i, ok := w.g.pcIdx[targetPC]; ok {
		w.cur = i
	} else {
		w.cur = int(targetPC>>2) % len(w.g.blocks)
	}
	w.pos = 0
	w.live = true
}

// Stop deactivates the wrong path (on recovery).
func (w *WrongPath) Stop() { w.live = false }

// Active reports whether a wrong path is being generated.
func (w *WrongPath) Active() bool { return w.live }

// Next implements trace.Source while active; ok is false when no
// wrong path is live.
func (w *WrongPath) Next() (trace.Uop, bool) {
	if !w.live {
		return trace.Uop{}, false
	}
	b := &w.g.blocks[w.cur]
	if w.pos < len(b.body) {
		u := b.body[w.pos]
		w.pos++
		if u.Kind.IsMem() {
			u.Addr = w.mem.next(w.rng)
		}
		return u, true
	}
	u := b.term
	w.pos = 0
	switch u.Kind {
	case trace.CondBranch:
		// Wrong-path branch outcomes are unknowable from the trace;
		// randomize. They are never retired, so this only affects
		// which wrong-path blocks are walked.
		u.Taken = w.rng.Intn(2) == 0
		if u.Taken {
			w.cur = b.takenTo
		} else {
			w.cur = b.fallTo
		}
	default:
		w.cur = b.takenTo
	}
	return u, true
}

var _ trace.Source = (*WrongPath)(nil)
